"""Columnar batch execution for the whole query suite.

Training evaluates hundreds of range queries after every ``delta``
insertions (the reward of Eq. 3 over the workload), and the evaluation
harness re-runs the same workload — plus kNN, similarity, and aggregate
queries — on every simplified database it scores. The per-query paths
(:func:`repro.queries.range_query.range_query` and friends) walk the
database trajectory by trajectory in Python — correct, but the wrong shape
for a hot path.

:class:`QueryEngine` treats the *workload* as the unit of execution. The
database is flattened once into the cached ``(N, 3)`` point matrix and
per-trajectory offset array (:meth:`TrajectoryDatabase.point_matrix` /
:meth:`~TrajectoryDatabase.point_offsets`), then sorted by uniform grid
cell into a CSR layout (cell -> contiguous point rows). On top of that
layout the engine offers four batched execution paths:

* **Range workloads** (:meth:`QueryEngine.evaluate` /
  :meth:`~QueryEngine.evaluate_state`) — a whole workload is answered in a
  fixed number of vectorized passes: query-box cell ranges, a
  (queries x cells) overlap matrix, one gather of all candidate rows, one
  broadcasted containment test, and one ``np.unique`` over
  (query, trajectory) hit pairs.
* **Aggregates** (:meth:`~QueryEngine.count` /
  :meth:`~QueryEngine.histogram`) — per-box point counts and the spatial
  density heatmap computed from the same CSR sweep / the sorted coordinate
  columns in one pass; :mod:`repro.queries.aggregate` routes through these.
* **kNN candidate generation** (:meth:`~QueryEngine.knn_candidates`) — for
  each kNN time window, the ids of trajectories with enough points inside
  the window to be comparable at all. Only these require the expensive
  EDR / t2vec distance computations (:func:`repro.queries.knn.knn_query_batch`);
  everything else is provably incomparable (infinite distance) and is
  excluded up front. The filter is exact — kNN comparability depends only
  on the temporal axis, so pruning whole time-slab cell ranges loses
  nothing.
* **Similarity workloads** (:meth:`~QueryEngine.similarity`) — batched
  synchronized-distance threshold queries: every candidate trajectory is
  interpolated once over the union of all queries' checkpoint instants (the
  per-query reference interpolates once per (query, candidate) pair), then
  the continuous predicate is evaluated as one broadcasted comparison per
  query. :func:`repro.queries.similarity.similarity_query_batch` and the
  evaluation harness route through this.
* **Incremental updates** (:meth:`~QueryEngine.incremental_view`) — a live
  per-query result-set view maintained under single-point insertions
  (``notify_insert``), with episode resets served from the engine's memo.
  The training evaluator (:class:`repro.core.reward.IncrementalRangeEvaluator`)
  is a thin wrapper over this view, so training and evaluation share one
  memoized result store.

Whole-workload results of every path are memoized in one LRU, keyed on the
query parameters and (for simplified-state evaluation) the kept-row
fingerprint, so re-scoring the same database state against the same
workload is a dictionary lookup.

Candidate pruning is **pluggable**: the engine consumes candidates through
the :class:`~repro.index.backend.IndexBackend` protocol. The default
:class:`~repro.index.backend.GridBackend` keeps the CSR fast path above
(the engine adopts its cell geometry and sweeps its own layout); any other
backend — octree, kd-tree, R-tree, temporal — feeds per-box candidate
trajectory ids into the same chunked exact-verification sweep, so results
are bit-identical whichever backend prunes (only cost changes). The
cost-based planner (:func:`repro.queries.planner.plan_workload`) picks a
backend per workload from box-extent statistics.

The per-query functions remain the reference implementations the engine is
property-tested against (``tests/test_query_engine.py``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable
from weakref import WeakKeyDictionary, ref

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.index.backend import GridBackend, IndexBackend
from repro.index.grid import GridIndex
from repro.queries import _kernels

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (workloads -> queries)
    from repro.data.simplification import SimplificationState
    from repro.workloads.generators import RangeQueryWorkload

#: Process-wide engine reuse: one engine per live database object, so
#: repeated scoring of the same (simplified) database shares the columnar
#: layout and the result memo.
_ENGINES: "WeakKeyDictionary[TrajectoryDatabase, QueryEngine]" = WeakKeyDictionary()

#: Candidate rows expanded per pass: bounds the working-set memory for
#: worst-case (whole-extent) boxes without throttling typical selective
#: workloads, which fit in a single pass.
_ROW_BUDGET = 1 << 19


def array_digest(arr: np.ndarray) -> bytes:
    """16-byte blake2b digest of an array's raw bytes.

    The shared cache-key idiom: the engine memo keys simplified-state rows
    and similarity query points with it, and the service request layer
    (:mod:`repro.service.requests`) keys query trajectories the same way,
    so the two cache layers can never silently disagree on what identifies
    a query.
    """
    return hashlib.blake2b(arr.tobytes(), digest_size=16).digest()


def _workload_bounds(queries: Iterable) -> tuple[np.ndarray, np.ndarray]:
    """Stacked ``(Q, 3)`` lower/upper bound matrices of the query boxes."""
    boxes = [q.box if hasattr(q, "box") else q for q in queries]
    if not boxes:
        return np.empty((0, 3)), np.empty((0, 3))
    lo = np.array([[b.xmin, b.ymin, b.tmin] for b in boxes], dtype=float)
    hi = np.array([[b.xmax, b.ymax, b.tmax] for b in boxes], dtype=float)
    return lo, hi


class QueryEngine:
    """Vectorized, memoizing range-query workload evaluator for one database.

    Parameters
    ----------
    db:
        The database all evaluations run against.
    grid:
        Optional :class:`GridIndex` whose cell geometry the engine adopts
        (results are identical either way; this only aligns pruning cells).
    resolution:
        Grid resolution when neither an index nor a backend is supplied.
    max_cached_results:
        Number of whole-workload result lists kept in the LRU memo.
    backend:
        Optional :class:`~repro.index.backend.IndexBackend` built over
        ``db``. A :class:`~repro.index.backend.GridBackend` (the default)
        engages the CSR fast path; any other backend routes candidate
        generation through :meth:`IndexBackend.candidate_ids` with the
        same exact per-point verification, so results never depend on the
        choice — only pruning cost does. Mutually exclusive with ``grid``.
    """

    def __init__(
        self,
        db: TrajectoryDatabase,
        grid: GridIndex | None = None,
        resolution: tuple[int, int, int] = (32, 32, 16),
        max_cached_results: int = 16,
        backend: IndexBackend | None = None,
    ) -> None:
        # Only a weak reference to the database: the engine snapshots all
        # data it needs, and a strong reference would pin every database in
        # the process-wide _ENGINES WeakKeyDictionary forever (a value that
        # strongly references its key never expires).
        self._db_ref = ref(db)
        self._n_traj = len(db)
        self._offsets = db.point_offsets()
        self._extent = db.bounding_box
        if backend is not None and grid is not None:
            raise ValueError("pass either grid or backend, not both")
        if backend is None:
            if grid is None and (
                min(resolution) < 1 or max(resolution) >= 2**15
            ):
                # Reject before any geometry is computed (the int16 cell
                # check below would fire only after GridBackend divides by
                # the resolution).
                raise ValueError(
                    f"resolution axes must be in [1, {2**15 - 1}], "
                    f"got {tuple(resolution)}"
                )
            backend = GridBackend(db, resolution=resolution, grid=grid)
        elif backend.database is not db:
            # Candidate completeness is only guaranteed for the database the
            # backend indexed; a lookalike would silently drop results.
            raise ValueError("backend was built over a different database")
        self.backend = backend
        self._grid_mode = isinstance(backend, GridBackend)
        points = db.point_matrix()
        owners = db.point_ownership()
        if self._grid_mode:
            self.resolution = backend.resolution
            if min(self.resolution) < 1 or max(self.resolution) >= 2**15:
                # Cell coordinates are stored as int16; larger axes would
                # wrap silently and drop results.
                raise ValueError(
                    f"resolution axes must be in [1, {2**15 - 1}], "
                    f"got {self.resolution}"
                )
            self._origin, self._cell_size = backend.origin, backend.cell_size
            # CSR layout: points sorted by composite cell id; each occupied
            # cell owns a contiguous row range of the sorted columns.
            # Coordinates are stored column-contiguous so the hot path runs
            # on 1-D takes and comparisons instead of (rows, 3) fancy
            # indexing.
            nx, ny, nt = self.resolution
            cells = np.clip(
                np.floor((points - self._origin) / self._cell_size).astype(np.int64),
                0,
                np.array(self.resolution) - 1,
            )
            cell_ids = (cells[:, 0] * ny + cells[:, 1]) * nt + cells[:, 2]
            self._order = np.argsort(cell_ids, kind="stable")
            sorted_ids = cell_ids[self._order]
            unique_ids, starts = np.unique(sorted_ids, return_index=True)
            self._cell_starts = starts.astype(np.int32)
            self._cell_counts = np.diff(
                np.append(starts, len(points))
            ).astype(np.int32)
            # Per-axis coordinates of each occupied cell, for the overlap
            # test (int16: resolutions are far below 2**15 cells per axis).
            self._cell_x = (unique_ids // (ny * nt)).astype(np.int16)
            self._cell_y = ((unique_ids // nt) % ny).astype(np.int16)
            self._cell_t = (unique_ids % nt).astype(np.int16)
        else:
            # Generic backends address candidates by trajectory id; keeping
            # the columns in original (trajectory-major) order makes each
            # candidate one contiguous row range via the offsets array.
            self.resolution = resolution
            self._order = np.arange(len(points), dtype=np.int64)
        sorted_points = points[self._order]
        self._px = np.ascontiguousarray(sorted_points[:, 0])
        self._py = np.ascontiguousarray(sorted_points[:, 1])
        self._pt = np.ascontiguousarray(sorted_points[:, 2])
        self._owners = owners[self._order].astype(np.int32)
        # Original-order coordinate columns, rebuilt lazily for execution
        # paths that need per-trajectory sequences (similarity interpolation).
        self._orig_cols: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        #: Instance-scoped executor-hook overrides (shadow the class registry).
        self._local_hooks: dict = {}
        self._max_cached = max_cached_results
        # One LRU for every execution path; values are immutable canonical
        # payloads (tuples of frozensets for result sets, read-only arrays
        # for counts / histograms / candidate lists).
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    @property
    def db(self) -> TrajectoryDatabase | None:
        """The engine's database, or None once it has been garbage-collected."""
        return self._db_ref()

    @classmethod
    def for_database(cls, db: TrajectoryDatabase, **kwargs) -> "QueryEngine":
        """The shared engine of ``db`` (created on first use, then reused).

        Keyed weakly on the database object: engines die with their database,
        and every consumer scoring the same database state hits the same
        memo. ``kwargs`` configure the engine only on first creation; later
        calls return the existing engine unchanged — construct
        :class:`QueryEngine` directly for a private configuration.
        """
        engine = _ENGINES.get(db)
        if engine is None:
            engine = cls(db, **kwargs)
            _ENGINES[db] = engine
        return engine

    # ------------------------------------------------------------ executor hooks
    #: Class-level registry of named execution hooks: kind -> fn(engine,
    #: **params). This gives batched execution paths a *name-addressable*
    #: surface: the sharded service's shard runtimes run their base-tier
    #: work through :meth:`execute` instead of hard-coding engine method
    #: calls. To swap or instrument a hook for ONE engine (e.g. one
    #: service's shards) use :meth:`register_local_executor` — mutating the
    #: class registry changes dispatch for every engine in the process.
    #: Serving a NEW query kind across shards still needs its shard-side
    #: pending handling and service-side merge rule in addition to a hook
    #: here — the registry replaces only the engine dispatch.
    _executor_hooks: dict = {}

    @classmethod
    def register_executor(cls, kind: str, fn) -> None:
        """Register (or replace) the PROCESS-WIDE execution hook for ``kind``.

        ``fn`` is called as ``fn(engine, **params)`` and must be a pure
        function of the engine's database state and its parameters (results
        may be cached by the engine or by consumers keyed on those).
        Affects every engine; prefer :meth:`register_local_executor` for
        instance-scoped instrumentation.
        """
        cls._executor_hooks[str(kind)] = fn

    def register_local_executor(self, kind: str, fn) -> None:
        """Override the hook for ``kind`` on THIS engine only.

        Instance overrides shadow the class registry in :meth:`execute`,
        scoping instrumentation or replacement to the engine being
        instrumented instead of the whole process.
        """
        self._local_hooks[str(kind)] = fn

    @classmethod
    def executor_kinds(cls) -> tuple[str, ...]:
        """The process-wide registered execution-hook names."""
        return tuple(sorted(cls._executor_hooks))

    def execute(self, kind: str, **params):
        """Dispatch ``kind`` to this engine's local hook, then the registry."""
        fn = self._local_hooks.get(kind) or self._executor_hooks.get(kind)
        if fn is None:
            raise KeyError(
                f"no executor hook registered for {kind!r}; "
                f"known kinds: {self.executor_kinds()}"
            )
        return fn(self, **params)

    # ---------------------------------------------------------------- execution
    def evaluate(self, workload: "RangeQueryWorkload | Iterable") -> list[set[int]]:
        """Result sets of every query of ``workload`` on the database.

        Identical to ``[range_query(db, q) for q in workload]`` but executed
        as batched vectorized passes, and memoized on the query boxes.
        """
        lo, hi = _workload_bounds(workload)
        key = ("full", lo.tobytes(), hi.tobytes())
        cached = self._cache_get(key)
        if cached is not None:
            return [set(s) for s in cached]
        results = self._evaluate_bounds(lo, hi)
        self._cache_put(key, tuple(frozenset(s) for s in results))
        return results

    def evaluate_state(
        self, workload: "RangeQueryWorkload | Iterable", state: "SimplificationState"
    ) -> list[set[int]]:
        """Evaluate ``workload`` on the simplified view described by ``state``.

        Equivalent to materializing the state and running every query on the
        resulting database, without building any trajectory objects. Memoized
        on (workload, kept rows), so re-evaluating an unchanged state — e.g.
        the endpoints-only reset at the start of every training episode — is
        a cache hit.
        """
        if state.database is not self._db_ref():
            raise ValueError("state does not belong to this engine's database")
        rows = self.state_rows(state)
        lo, hi = _workload_bounds(workload)
        # Rows can be as large as the database; key on a fixed-size digest
        # instead of the raw bytes so the LRU holds no point-scale payloads.
        key = ("state", lo.tobytes(), hi.tobytes(), array_digest(rows))
        cached = self._cache_get(key)
        if cached is not None:
            return [set(s) for s in cached]
        kept = np.zeros(len(self._px), dtype=bool)
        kept[rows] = True
        results = self._evaluate_bounds(lo, hi, kept_sorted=kept[self._order])
        self._cache_put(key, tuple(frozenset(s) for s in results))
        return results

    # --------------------------------------------------------------- aggregates
    def count(self, boxes: Iterable) -> np.ndarray:
        """Point counts inside each box, as an ``(Q,)`` int64 array.

        Identical to ``[count_query_scan(db, b) for b in boxes]``
        (:mod:`repro.queries.aggregate`) but computed in one batched CSR
        sweep over all boxes, and memoized on the box bounds.
        """
        lo, hi = _workload_bounds(boxes)
        key = ("count", lo.tobytes(), hi.tobytes())
        cached = self._cache_get(key)
        if cached is not None:
            return cached.copy()
        counts = np.zeros(len(lo), dtype=np.int64)
        for rows, row_query, inside in self._candidate_passes(lo, hi):
            # Each point lives in exactly one cell, so (query, row) pairs are
            # unique and a bincount over query ids is an exact tally.
            counts += np.bincount(
                row_query[inside], minlength=len(lo)
            ).astype(np.int64)
        counts.setflags(write=False)
        self._cache_put(key, counts)
        return counts.copy()

    def histogram(
        self,
        grid: int = 32,
        box: BoundingBox | None = None,
        normalize: bool = False,
    ) -> np.ndarray:
        """Spatial point-density histogram of shape ``(grid, grid)``.

        Identical to :func:`repro.queries.aggregate.density_histogram_scan`
        over the engine's database, but binned in one vectorized pass over
        the sorted coordinate columns. ``box`` restricts (spatially) which
        points are rasterized and defaults to the database's bounding box;
        its temporal extent is ignored, matching the reference.
        """
        if grid < 1:
            raise ValueError("grid must be >= 1")
        box = box or self._extent
        key = (
            "hist", grid, box.xmin, box.xmax, box.ymin, box.ymax, normalize,
        )
        cached = self._cache_get(key)
        if cached is not None:
            return cached.copy()
        sx = max(box.xmax - box.xmin, 1e-12)
        sy = max(box.ymax - box.ymin, 1e-12)
        inside = (
            (self._px >= box.xmin)
            & (self._px <= box.xmax)
            & (self._py >= box.ymin)
            & (self._py <= box.ymax)
        )
        x = self._px[inside]
        y = self._py[inside]
        # Same binning arithmetic as the reference scan (truncation toward
        # zero; the closing edge folds into the last cell).
        ix = np.minimum(((x - box.xmin) / sx * grid).astype(int), grid - 1)
        iy = np.minimum(((y - box.ymin) / sy * grid).astype(int), grid - 1)
        hist = (
            np.bincount(ix * grid + iy, minlength=grid * grid)
            .astype(float)
            .reshape(grid, grid)
        )
        if normalize:
            total = hist.sum()
            if total > 0:
                hist /= total
        hist.setflags(write=False)
        self._cache_put(key, hist)
        return hist.copy()

    # ----------------------------------------------------------- kNN candidates
    def knn_candidates(
        self,
        windows: Iterable[tuple[float, float]],
        min_points: int = 2,
    ) -> list[np.ndarray]:
        """Per-window ids of trajectories comparable under a kNN query.

        For each time window ``(ts, te)`` returns the sorted ids of
        trajectories with at least ``min_points`` points whose timestamp
        falls inside ``[ts, te]`` — exactly the trajectories whose window
        restriction :func:`repro.queries.knn.knn_query` can rank; every
        other trajectory's distance is infinite by construction. The filter
        is computed by pruning the CSR layout to the cell ranges overlapping
        each window's time slab (cells straddling the slab boundary are
        included and resolved by the exact per-point test), then counting
        surviving points per owner.

        Exactness: kNN comparability depends only on the temporal axis, so
        this is a true filter, not a heuristic — spatially distant
        trajectories still receive finite (large) EDR / t2vec distances in
        the reference and may legitimately enter a result when little else
        overlaps the window.
        """
        win = np.asarray(list(windows), dtype=float).reshape(-1, 2)
        key = ("knn_candidates", win.tobytes(), min_points)
        cached = self._cache_get(key)
        if cached is not None:
            return [c.copy() for c in cached]
        n_traj = self._n_traj
        extent = self._extent
        # Reuse the 3-axis sweep with the spatial axes opened to the extent:
        # only the temporal bounds select anything, and in-extent points
        # trivially pass the spatial containment test.
        lo = np.column_stack(
            [
                np.full(len(win), extent.xmin),
                np.full(len(win), extent.ymin),
                win[:, 0],
            ]
        )
        hi = np.column_stack(
            [
                np.full(len(win), extent.xmax),
                np.full(len(win), extent.ymax),
                win[:, 1],
            ]
        )
        # (windows x trajectories) survivor counts; kNN workloads are small
        # (tens of windows), so the dense tally stays tiny next to the
        # point columns.
        counts = np.zeros(len(win) * n_traj, dtype=np.int64)
        for rows, row_query, inside in self._candidate_passes(lo, hi):
            idx = row_query[inside].astype(np.int64) * n_traj + self._owners.take(
                rows[inside]
            )
            counts += np.bincount(idx, minlength=len(counts))
        per_window = counts.reshape(len(win), n_traj)
        results = [np.flatnonzero(row >= min_points) for row in per_window]
        for arr in results:
            arr.setflags(write=False)
        self._cache_put(key, tuple(results))
        return [c.copy() for c in results]

    # ---------------------------------------------------------------- similarity
    def similarity(
        self,
        queries: Iterable,
        delta: float,
        time_windows: "Iterable[tuple[float, float] | None] | None" = None,
        n_checkpoints: int = 32,
    ) -> list[set[int]]:
        """Result sets of synchronized-distance queries on the database.

        Identical to ``[similarity_query(db, q, delta, w) for q, w in
        zip(queries, time_windows)]`` (the property-tested reference in
        :mod:`repro.queries.similarity`) but batched: each candidate
        trajectory's positions are interpolated ONCE over the union of all
        queries' checkpoint instants, then every (query, candidate)
        predicate is one broadcasted comparison over the precomputed
        position matrix. Query trajectories are external objects (they need
        not live in the database); results are memoized on the query
        point sets, windows, ``delta``, and ``n_checkpoints``.
        """
        from repro.queries.similarity import query_checkpoints, resolve_time_windows

        if delta < 0:
            raise ValueError("delta must be non-negative")
        queries = list(queries)
        windows = resolve_time_windows(queries, time_windows)
        if any(te < ts for ts, te in windows):
            raise ValueError("empty time window")
        if not queries:
            return []
        key = (
            "similarity",
            float(delta),
            int(n_checkpoints),
            tuple(
                (array_digest(q.points), w) for q, w in zip(queries, windows)
            ),
        )
        cached = self._cache_get(key)
        if cached is not None:
            return [set(s) for s in cached]

        ox, oy, ot = self._original_columns()
        offsets = self._offsets
        # Per-trajectory lifespans straight off the original-order column.
        t_starts = ot[offsets[:-1]]
        t_ends = ot[offsets[1:] - 1]

        # Per-query checkpoints / query positions / query lifespan masks,
        # computed exactly as the reference does.
        cp_list: list[np.ndarray] = []
        qpos_list: list[np.ndarray | None] = []
        alive_list: list[np.ndarray | None] = []
        cand_masks: list[np.ndarray | None] = []
        for q, (ts, te) in zip(queries, windows):
            cps = query_checkpoints(q, ts, te, n_checkpoints)
            cp_list.append(cps)
            if len(cps) == 0:
                qpos_list.append(None)
                alive_list.append(None)
                cand_masks.append(None)
                continue
            qpos_list.append(q.positions_at(cps))
            alive_list.append((cps >= q.times[0]) & (cps <= q.times[-1]))
            # Lifespan-overlap candidate filter, matching the reference scan.
            cand_masks.append((t_ends >= ts) & (t_starts <= te))

        results: list[set[int]] = [set() for _ in queries]
        union_mask = np.zeros(self._n_traj, dtype=bool)
        for mask in cand_masks:
            if mask is not None:
                union_mask |= mask
        cand_ids = np.flatnonzero(union_mask)
        if len(cand_ids) == 0:
            self._cache_put(key, tuple(frozenset(s) for s in results))
            return results

        # ONE interpolation pass per candidate over the union grid of all
        # checkpoint instants (np.interp is pointwise, so values at each
        # instant equal the reference's per-query interpolation). The
        # candidate axis is chunked so the (chunk, grid, 2) position buffer
        # stays bounded however many candidates and checkpoints the batch
        # accumulates.
        grid = np.unique(np.concatenate([c for c in cp_list if len(c)]))
        grid_idx = [
            np.searchsorted(grid, cps) if len(cps) else None  # exact: grid ⊇ cps
            for cps in cp_list
        ]
        chunk = max(1, _ROW_BUDGET // max(len(grid), 1))
        for start in range(0, len(cand_ids), chunk):
            ids_chunk = cand_ids[start : start + chunk]
            # Compiled fast path: same per-candidate np.interp, fused loop
            # (None when the numpy backend is on).
            pos = _kernels.interp_chunk(grid, ot, ox, oy, offsets, ids_chunk)
            if pos is None:
                pos = np.empty((len(ids_chunk), len(grid), 2))
                for row, tid in enumerate(ids_chunk):
                    s, e = offsets[tid], offsets[tid + 1]
                    pos[row, :, 0] = np.interp(grid, ot[s:e], ox[s:e])
                    pos[row, :, 1] = np.interp(grid, ot[s:e], oy[s:e])
            for qi, (cps, qpos, alive, cmask) in enumerate(
                zip(cp_list, qpos_list, alive_list, cand_masks)
            ):
                if cmask is None:
                    continue
                in_chunk = np.flatnonzero(cmask[ids_chunk])
                if len(in_chunk) == 0:
                    continue
                ids = ids_chunk[in_chunk]
                # (candidates, checkpoints) comparability and gap tests in
                # one broadcasted pass; a candidate matches when it shares
                # at least one comparable instant and never exceeds delta
                # at any of them.
                comparable = (
                    alive[None, :]
                    & (cps[None, :] >= t_starts[ids][:, None])
                    & (cps[None, :] <= t_ends[ids][:, None])
                )
                gaps = np.linalg.norm(
                    pos[np.ix_(in_chunk, grid_idx[qi])] - qpos[None, :, :],
                    axis=2,
                )
                ok = (gaps <= delta) | ~comparable
                match = comparable.any(axis=1) & ok.all(axis=1)
                results[qi].update(int(t) for t in ids[match])
        self._cache_put(key, tuple(frozenset(s) for s in results))
        return results

    def _original_columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coordinate columns in original database row order (cached)."""
        if self._orig_cols is None:
            n = len(self._px)
            ox = np.empty(n)
            oy = np.empty(n)
            ot = np.empty(n)
            ox[self._order] = self._px
            oy[self._order] = self._py
            ot[self._order] = self._pt
            self._orig_cols = (ox, oy, ot)
        return self._orig_cols

    # -------------------------------------------------------- point memberships
    def point_memberships(self, boxes: Iterable) -> tuple[np.ndarray, np.ndarray]:
        """All (point row, box index) containment pairs of the database.

        Returns two aligned arrays ``(rows, box_idx)``: ``rows`` are global
        rows of :meth:`TrajectoryDatabase.point_matrix` (original database
        order) and ``box_idx`` the indices of the boxes containing that
        point, sorted by row then box. One batched CSR sweep replaces the
        per-consumer chunked point-vs-box loops (the greedy QDTS baseline's
        coverage setup runs through this).
        """
        lo, hi = _workload_bounds(boxes)
        parts_r: list[np.ndarray] = []
        parts_q: list[np.ndarray] = []
        for rows, row_query, inside in self._candidate_passes(lo, hi):
            parts_r.append(self._order[rows[inside]])
            parts_q.append(row_query[inside].astype(np.int64))
        if not parts_r:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        flat_rows = np.concatenate(parts_r)
        flat_boxes = np.concatenate(parts_q)
        order = np.lexsort((flat_boxes, flat_rows))
        return flat_rows[order], flat_boxes[order]

    # --------------------------------------------------------- incremental view
    def incremental_view(
        self, workload: "RangeQueryWorkload | Iterable"
    ) -> "IncrementalWorkloadView":
        """A live result-set view of ``workload`` under point insertions.

        The view's :meth:`~IncrementalWorkloadView.reset` is served through
        the engine's memo (so repeated episode resets over the same state
        are cache hits) and :meth:`~IncrementalWorkloadView.notify_insert`
        maintains the per-query result sets in ``O(#queries)`` per inserted
        point. This is the shared store behind
        :class:`repro.core.reward.IncrementalRangeEvaluator`.
        """
        return IncrementalWorkloadView(self, workload)

    def state_rows(self, state: "SimplificationState") -> np.ndarray:
        """Global point-matrix rows kept by ``state`` (sorted, int64)."""
        offsets = self._offsets
        return np.concatenate(
            [
                offsets[tid] + np.asarray(kept, dtype=np.int64)
                for tid, kept in enumerate(state.kept)
            ]
        )

    def _candidate_passes(self, lo: np.ndarray, hi: np.ndarray):
        """Chunked candidate expansion shared by all batched execution paths.

        Yields ``(rows, row_query, inside)`` per pass: ``rows`` index the
        sorted point columns, ``row_query`` is the query index owning each
        row, and ``inside`` the exact box-containment mask. Candidates come
        from the engine's backend — the CSR cell sweep for the grid
        backend, per-box trajectory-id sets through
        :meth:`IndexBackend.candidate_ids` otherwise. Either way a
        (query, row) pair is yielded at most once across all passes (each
        point lives in exactly one cell / one trajectory row range).
        """
        if self._grid_mode:
            yield from self._candidate_passes_grid(lo, hi)
        else:
            yield from self._candidate_passes_backend(lo, hi)

    def _alive_boxes(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Mask of boxes intersecting the database extent.

        Boxes disjoint from the extent have empty results; excluding them
        up front also keeps the grid path's clipped cell ranges from
        snapping out-of-extent boxes onto border cells.
        """
        extent = self._extent
        extent_lo = np.array([extent.xmin, extent.ymin, extent.tmin])
        extent_hi = np.array([extent.xmax, extent.ymax, extent.tmax])
        return ~((hi < extent_lo).any(axis=1) | (lo > extent_hi).any(axis=1))

    def _candidate_passes_grid(self, lo: np.ndarray, hi: np.ndarray):
        """CSR fast path: one (queries x occupied-cells) overlap matrix."""
        n_queries = len(lo)
        if n_queries == 0:
            return
        alive = self._alive_boxes(lo, hi)
        res = np.array(self.resolution) - 1
        lo_cells = np.clip(
            np.floor((lo - self._origin) / self._cell_size).astype(np.int64), 0, res
        ).astype(np.int16)
        hi_cells = np.clip(
            np.floor((hi - self._origin) / self._cell_size).astype(np.int64), 0, res
        ).astype(np.int16)
        # One (queries, occupied-cells) overlap matrix for the whole workload.
        overlap = (
            (self._cell_x >= lo_cells[:, 0:1])
            & (self._cell_x <= hi_cells[:, 0:1])
            & (self._cell_y >= lo_cells[:, 1:2])
            & (self._cell_y <= hi_cells[:, 1:2])
            & (self._cell_t >= lo_cells[:, 2:3])
            & (self._cell_t <= hi_cells[:, 2:3])
        )
        overlap[~alive] = False
        flat = np.flatnonzero(overlap)
        if len(flat) == 0:
            return
        q_idx = (flat // overlap.shape[1]).astype(np.int32)
        c_idx = flat % overlap.shape[1]
        yield from self._expand_pairs(
            q_idx, self._cell_starts[c_idx], self._cell_counts[c_idx], lo, hi
        )

    def _candidate_passes_backend(self, lo: np.ndarray, hi: np.ndarray):
        """Generic path: backend candidate ids -> contiguous row ranges.

        The columns are in original (trajectory-major) order here, so each
        candidate trajectory is one ``offsets[tid] .. offsets[tid + 1]``
        range — the same (starts, lengths) currency as the CSR cells, fed
        through the same budgeted expansion and exact containment test.
        """
        n_queries = len(lo)
        if n_queries == 0:
            return
        # Only alive boxes reach the backend: each candidate lookup is a
        # per-box structure traversal, not worth paying for boxes disjoint
        # from the extent (which have empty results by definition).
        alive_idx = np.flatnonzero(self._alive_boxes(lo, hi))
        if len(alive_idx) == 0:
            return
        candidates = self.backend.candidate_ids(lo[alive_idx], hi[alive_idx])
        offsets = self._offsets
        q_parts: list[np.ndarray] = []
        start_parts: list[np.ndarray] = []
        length_parts: list[np.ndarray] = []
        for qi, ids in zip(alive_idx, candidates):
            if len(ids) == 0:
                continue
            ids = np.asarray(ids, dtype=np.int64)
            q_parts.append(np.full(len(ids), qi, dtype=np.int32))
            start_parts.append(offsets[ids])
            length_parts.append(offsets[ids + 1] - offsets[ids])
        if not q_parts:
            return
        yield from self._expand_pairs(
            np.concatenate(q_parts),
            np.concatenate(start_parts),
            np.concatenate(length_parts),
            lo,
            hi,
        )

    def _expand_pairs(
        self,
        q_idx: np.ndarray,
        starts: np.ndarray,
        lengths: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
    ):
        """Expand (query, candidate-range) pairs into verified row passes.

        ``starts[i]``/``lengths[i]`` describe a contiguous run of candidate
        rows for query ``q_idx[i]`` (a CSR cell or a whole trajectory).
        Runs are expanded "multi-arange" style in passes of at most
        ~``_ROW_BUDGET`` rows, each with the exact containment test.
        """
        pair_ends = np.cumsum(lengths, dtype=np.int64)
        # Column-contiguous per-axis bounds for the 1-D takes below.
        qlo = [np.ascontiguousarray(lo[:, a]) for a in range(3)]
        qhi = [np.ascontiguousarray(hi[:, a]) for a in range(3)]
        axes = (self._px, self._py, self._pt)
        pair_start = 0
        while pair_start < len(q_idx):
            done = pair_ends[pair_start - 1] if pair_start else 0
            pair_stop = int(
                np.searchsorted(pair_ends, done + _ROW_BUDGET, side="left") + 1
            )
            pairs = slice(pair_start, min(pair_stop, len(q_idx)))
            sub_lengths = lengths[pairs]
            # Compiled fast path: one fused expansion + containment pass
            # (identical comparisons; None when the numpy backend is on).
            expanded = _kernels.expand_rows(
                starts[pairs], sub_lengths, q_idx[pairs],
                self._px, self._py, self._pt, qlo, qhi,
            )
            if expanded is not None:
                yield expanded
                pair_start = pairs.stop
                continue
            sub_ends = np.cumsum(sub_lengths, dtype=np.int64)
            total = int(sub_ends[-1])
            # rows = for each pair, start + 0..length-1, flattened: one
            # repeat of the rebased starts plus a single arange.
            base = starts[pairs].astype(np.int64) - (sub_ends - sub_lengths)
            rows = np.repeat(base, sub_lengths) + np.arange(total, dtype=np.int64)
            row_query = np.repeat(q_idx[pairs], sub_lengths)
            inside: np.ndarray | None = None
            for axis, alo, ahi in zip(axes, qlo, qhi):
                coord = axis.take(rows)
                test = (coord >= alo.take(row_query)) & (coord <= ahi.take(row_query))
                inside = test if inside is None else inside & test
            yield rows, row_query, inside
            pair_start = pairs.stop

    def _evaluate_bounds(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        kept_sorted: np.ndarray | None = None,
    ) -> list[set[int]]:
        n_queries = len(lo)
        results: list[set[int]] = [set() for _ in range(n_queries)]
        n_traj = self._n_traj
        hit_pairs: list[np.ndarray] = []
        for rows, row_query, inside in self._candidate_passes(lo, hi):
            if kept_sorted is not None:
                inside = inside & kept_sorted[rows]
            hits = row_query[inside].astype(np.int64) * n_traj + self._owners.take(
                rows[inside]
            )
            if len(hits):
                # Owners are contiguous inside each (query, cell) segment, so
                # adjacent dedup removes most duplicates before the sort-based
                # unique below.
                keep = np.empty(len(hits), dtype=bool)
                keep[0] = True
                np.not_equal(hits[1:], hits[:-1], out=keep[1:])
                hit_pairs.append(hits[keep])
        if not hit_pairs:
            return results
        # Unique (query, trajectory) pairs -> result sets.
        unique = np.unique(np.concatenate(hit_pairs))
        hit_queries = unique // n_traj
        hit_owners = unique % n_traj
        bounds = np.searchsorted(hit_queries, np.arange(n_queries + 1))
        for qi in range(n_queries):
            s, e = bounds[qi], bounds[qi + 1]
            if e > s:
                results[qi] = set(hit_owners[s:e].tolist())
        return results

    # -------------------------------------------------------------------- memo
    def _cache_get(self, key: tuple):
        """The canonical cached payload of ``key``, or None (counts a miss).

        Payloads are immutable canonical forms (tuples of frozensets,
        read-only arrays); callers materialize fresh copies so corrupting a
        returned result cannot poison the memo.
        """
        cached = self._cache.get(key)
        if cached is None:
            self.cache_misses += 1
            return None
        self._cache.move_to_end(key)
        self.cache_hits += 1
        return cached

    def _cache_put(self, key: tuple, payload) -> None:
        self._cache[key] = payload
        while len(self._cache) > self._max_cached:
            self._cache.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop all memoized results (hit/miss counters are kept)."""
        self._cache.clear()


# Built-in execution hooks: the batched paths the sharded service's runtimes
# dispatch by name (repro.service.runtime uses exactly these kinds).
QueryEngine.register_executor(
    "range", lambda engine, *, boxes: engine.evaluate(boxes)
)
QueryEngine.register_executor(
    "count", lambda engine, *, boxes: engine.count(boxes)
)
QueryEngine.register_executor(
    "histogram",
    lambda engine, *, grid=32, box=None, normalize=False: engine.histogram(
        grid, box, normalize
    ),
)
QueryEngine.register_executor(
    "similarity",
    lambda engine, *, queries, delta, time_windows=None, n_checkpoints=32: (
        engine.similarity(queries, delta, time_windows, n_checkpoints)
    ),
)


class IncrementalWorkloadView:
    """Live per-query result sets of one workload under point insertions.

    Range results only ever *grow* under insertion (a trajectory matches a
    query once any kept point falls in its box), so the view maintains each
    query's result set exactly in ``O(#queries)`` per inserted point. Full
    recomputation (:meth:`reset`) runs through the owning engine's batched,
    memoized state evaluation — the training evaluator and any other
    consumer of the same engine therefore share one result store.

    Obtain views via :meth:`QueryEngine.incremental_view`.
    """

    __slots__ = ("engine", "workload", "_lo", "_hi", "_results")

    def __init__(
        self, engine: QueryEngine, workload: "RangeQueryWorkload | Iterable"
    ) -> None:
        self.engine = engine
        # The workload is iterated once per reset as well as here; a one-shot
        # iterable would yield zero queries on every later pass, so
        # materialize it unless it is re-iterable already.
        queries = list(workload)
        self.workload = workload if hasattr(workload, "__len__") else queries
        self._lo, self._hi = _workload_bounds(queries)
        self._results: list[set[int]] = [set() for _ in range(len(self._lo))]

    def __len__(self) -> int:
        return len(self._results)

    def reset(self, state: "SimplificationState") -> None:
        """Recompute all result sets for ``state`` (memoized in the engine)."""
        self._results = self.engine.evaluate_state(self.workload, state)

    def notify_insert(self, traj_id: int, point: np.ndarray) -> None:
        """Record that ``point`` of ``traj_id`` entered the simplified view."""
        point = np.asarray(point, dtype=float)
        hits = np.flatnonzero(
            (point >= self._lo).all(axis=1) & (point <= self._hi).all(axis=1)
        )
        for qi in hits:
            self._results[qi].add(traj_id)

    @property
    def result_sets(self) -> list[set[int]]:
        """The live result sets (no copy — mutate only via notify_insert)."""
        return self._results

    @property
    def results(self) -> list[set[int]]:
        """Defensive copies of the current result sets."""
        return [set(s) for s in self._results]
