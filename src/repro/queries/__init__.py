"""Trajectory query operators and quality measures (paper, Section III-B).

Four query types are supported, matching the paper's evaluation:

* :func:`range_query` — spatio-temporal box containment,
* :class:`QueryEngine` — vectorized, memoizing batch execution of whole
  range-query workloads (the training / evaluation hot path),
* :func:`knn_query` — k nearest trajectories under EDR or a learned
  (t2vec-style) similarity,
* :func:`similarity_query` — synchronized-distance threshold match,
* :func:`traclus_cluster` — TRACLUS partition-and-group clustering.

Query accuracy of a simplified database is measured with the F1-score of its
results against the original database's results (:mod:`repro.queries.metrics`).
"""

from repro.queries.range_query import RangeQuery, range_query, range_query_batch
from repro.queries.engine import IncrementalWorkloadView, QueryEngine
from repro.queries.planner import (
    PLANNER_BACKENDS,
    WorkloadPlan,
    estimate_backend_costs,
    plan_workload,
)
from repro.queries.edr import edr_distance, edr_distances_one_to_many
from repro.queries.t2vec import T2VecEmbedder
from repro.queries.knn import knn_query, knn_query_batch
from repro.queries.similarity import similarity_query, similarity_query_batch
from repro.queries.join import distance_join
from repro.queries.clustering import traclus_cluster, TraclusConfig
from repro.queries.aggregate import (
    count_query,
    count_query_scan,
    density_histogram,
    density_histogram_scan,
    histogram_similarity,
    heatmap_f1,
)
from repro.queries.metrics import (
    precision_recall_f1,
    f1_score,
    clustering_pairs,
    clustering_f1,
    jaccard,
    kendall_tau,
    adjusted_rand_index,
)

__all__ = [
    "RangeQuery",
    "range_query",
    "range_query_batch",
    "QueryEngine",
    "IncrementalWorkloadView",
    "WorkloadPlan",
    "plan_workload",
    "estimate_backend_costs",
    "PLANNER_BACKENDS",
    "edr_distance",
    "edr_distances_one_to_many",
    "T2VecEmbedder",
    "knn_query",
    "knn_query_batch",
    "similarity_query",
    "similarity_query_batch",
    "distance_join",
    "traclus_cluster",
    "TraclusConfig",
    "precision_recall_f1",
    "f1_score",
    "clustering_pairs",
    "clustering_f1",
    "jaccard",
    "kendall_tau",
    "adjusted_rand_index",
    "count_query",
    "count_query_scan",
    "density_histogram",
    "density_histogram_scan",
    "histogram_similarity",
    "heatmap_f1",
]
