"""Skyline (Pareto) selection of baselines (paper, Figure 3).

The paper first scores all 25 baselines on the five query tasks and keeps
only the *skyline*: the methods not dominated on every task by some other
method. RL4QDTS is then compared against the skyline only.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when ``a`` is >= ``b`` everywhere and > somewhere (higher better)."""
    if len(a) != len(b):
        raise ValueError("score vectors must have equal length")
    at_least_as_good = all(x >= y for x, y in zip(a, b))
    strictly_better = any(x > y for x, y in zip(a, b))
    return at_least_as_good and strictly_better


def skyline(scores: Mapping[str, Sequence[float]]) -> list[str]:
    """Names of the non-dominated methods (insertion order preserved).

    ``scores`` maps a method name to its per-task score vector; every vector
    must have the same length and higher scores are better.
    """
    names = list(scores)
    result = []
    for name in names:
        dominated = any(
            dominates(scores[other], scores[name])
            for other in names
            if other != name
        )
        if not dominated:
            result.append(name)
    return result
