"""The paper's 25 baselines and the database-level simplification driver.

Each baseline is a :class:`BaselineSpec` of (algorithm, error measure,
adaptation). The "E" adaptation simplifies every trajectory separately with
the proportional budget ``max(2, round(r * |T|))``; the "W" adaptation pools
the whole database (Section V-A). Span-Search exists only as "(E, DAD)",
giving 3 algorithms x 4 measures x 2 adaptations + 1 = 25 baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.bottomup import bottom_up, bottom_up_database
from repro.baselines.rlts import (
    RLTSPolicy,
    rlts_simplify,
    rlts_simplify_database,
)
from repro.baselines.span_search import span_search
from repro.baselines.topdown import top_down, top_down_database
from repro.data.database import TrajectoryDatabase
from repro.errors.measures import MEASURES

_ALGORITHMS = ("topdown", "bottomup", "rlts")
_DISPLAY = {
    "topdown": "Top-Down",
    "bottomup": "Bottom-Up",
    "rlts": "RLTS+",
    "spansearch": "Span-Search",
}


@dataclass(frozen=True, slots=True)
class BaselineSpec:
    """One baseline: algorithm x error measure x adaptation."""

    algorithm: str
    measure: str
    adaptation: str  # "E" (each trajectory) or "W" (whole database)

    def __post_init__(self) -> None:
        if self.algorithm not in (*_ALGORITHMS, "spansearch"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.measure not in MEASURES:
            raise ValueError(f"unknown measure {self.measure!r}")
        if self.adaptation not in ("E", "W"):
            raise ValueError(f"adaptation must be 'E' or 'W'")
        if self.algorithm == "spansearch" and self.adaptation == "W":
            raise ValueError("Span-Search has no 'W' adaptation")

    @property
    def name(self) -> str:
        """Paper-style display name, e.g. ``Top-Down(E,PED)``."""
        if self.algorithm == "spansearch":
            return "Span-Search"
        return f"{_DISPLAY[self.algorithm]}({self.adaptation},{self.measure.upper()})"


def all_baselines() -> list[BaselineSpec]:
    """The paper's 25 baselines."""
    specs = [
        BaselineSpec(algorithm, measure, adaptation)
        for algorithm in _ALGORITHMS
        for measure in sorted(MEASURES)
        for adaptation in ("E", "W")
    ]
    specs.append(BaselineSpec("spansearch", "dad", "E"))
    return specs


def get_baseline(name: str) -> BaselineSpec:
    """Look a baseline up by its display name (e.g. ``"Bottom-Up(E,SED)"``)."""
    for spec in all_baselines():
        if spec.name == name:
            return spec
    raise KeyError(f"unknown baseline {name!r}")


def _per_trajectory_budget(n_points: int, ratio: float) -> int:
    # Floor semantics keep the summed "E" budgets within the global budget
    # r * N (the paper's "at most r * N points"); the floor of 2 endpoints
    # is the same feasibility floor every simplifier gets.
    return max(2, int(ratio * n_points))


def simplify_database(
    db: TrajectoryDatabase,
    ratio: float,
    spec: BaselineSpec,
    rlts_policy: RLTSPolicy | None = None,
) -> TrajectoryDatabase:
    """Simplify ``db`` to compression ratio ``ratio`` with one baseline.

    ``rlts_policy`` supplies a trained RLTS+ policy; when omitted an
    untrained (randomly initialized) policy is used, which still runs but
    behaves near-randomly among the J cheapest candidates.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
    budget_total = db.budget_for_ratio(ratio)

    if spec.adaptation == "E":
        if spec.algorithm == "topdown":
            fn = lambda t, b: top_down(t, b, spec.measure)  # noqa: E731
        elif spec.algorithm == "bottomup":
            fn = lambda t, b: bottom_up(t, b, spec.measure)  # noqa: E731
        elif spec.algorithm == "rlts":
            policy = rlts_policy or RLTSPolicy(spec.measure)
            fn = lambda t, b: rlts_simplify(t, b, spec.measure, policy)  # noqa: E731
        else:
            fn = lambda t, b: span_search(t, b, spec.measure)  # noqa: E731
        return db.map_simplify(
            lambda t: fn(t, _per_trajectory_budget(len(t), ratio))
        )

    # "W" adaptation: the whole database as one pool.
    if spec.algorithm == "topdown":
        kept = top_down_database(db, budget_total, spec.measure)
    elif spec.algorithm == "bottomup":
        kept = bottom_up_database(db, budget_total, spec.measure)
    elif spec.algorithm == "rlts":
        policy = rlts_policy or RLTSPolicy(spec.measure)
        kept = rlts_simplify_database(db, budget_total, spec.measure, policy)
    else:  # pragma: no cover - rejected in __post_init__
        raise AssertionError("Span-Search has no 'W' adaptation")
    return TrajectoryDatabase(
        [t.subsample(kept[t.traj_id]) for t in db.trajectories]
    )
