"""The paper's 25 baselines and the database-level simplification driver.

Each baseline is a :class:`BaselineSpec` of (algorithm, error measure,
adaptation). The "E" adaptation simplifies every trajectory separately with
the proportional budget ``max(2, round(r * |T|))``; the "W" adaptation pools
the whole database (Section V-A). Span-Search exists only as "(E, DAD)",
giving 3 algorithms x 4 measures x 2 adaptations + 1 = 25 baselines.

The module also hosts the :class:`Simplifier` adapter — one keep-indices
interface over RL4QDTS, uniform down-sampling, and greedy QDTS — which is
what plugs any of the three into the serving layer's
:class:`~repro.service.compaction.SimplifyingCompaction`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.bottomup import bottom_up, bottom_up_database
from repro.baselines.greedy_qdts import greedy_qdts_ratio
from repro.baselines.rlts import (
    RLTSPolicy,
    rlts_simplify,
    rlts_simplify_database,
)
from repro.baselines.span_search import span_search
from repro.baselines.topdown import top_down, top_down_database
from repro.baselines.uniform import uniform_simplify
from repro.data.database import TrajectoryDatabase
from repro.errors.measures import MEASURES
from repro.errors.segment import _recover_indices

_ALGORITHMS = ("topdown", "bottomup", "rlts")
_DISPLAY = {
    "topdown": "Top-Down",
    "bottomup": "Bottom-Up",
    "rlts": "RLTS+",
    "spansearch": "Span-Search",
}


@dataclass(frozen=True, slots=True)
class BaselineSpec:
    """One baseline: algorithm x error measure x adaptation."""

    algorithm: str
    measure: str
    adaptation: str  # "E" (each trajectory) or "W" (whole database)

    def __post_init__(self) -> None:
        if self.algorithm not in (*_ALGORITHMS, "spansearch"):
            raise ValueError(f"unknown algorithm {self.algorithm!r}")
        if self.measure not in MEASURES:
            raise ValueError(f"unknown measure {self.measure!r}")
        if self.adaptation not in ("E", "W"):
            raise ValueError(f"adaptation must be 'E' or 'W'")
        if self.algorithm == "spansearch" and self.adaptation == "W":
            raise ValueError("Span-Search has no 'W' adaptation")

    @property
    def name(self) -> str:
        """Paper-style display name, e.g. ``Top-Down(E,PED)``."""
        if self.algorithm == "spansearch":
            return "Span-Search"
        return f"{_DISPLAY[self.algorithm]}({self.adaptation},{self.measure.upper()})"


def all_baselines() -> list[BaselineSpec]:
    """The paper's 25 baselines."""
    specs = [
        BaselineSpec(algorithm, measure, adaptation)
        for algorithm in _ALGORITHMS
        for measure in sorted(MEASURES)
        for adaptation in ("E", "W")
    ]
    specs.append(BaselineSpec("spansearch", "dad", "E"))
    return specs


def get_baseline(name: str) -> BaselineSpec:
    """Look a baseline up by its display name (e.g. ``"Bottom-Up(E,SED)"``)."""
    for spec in all_baselines():
        if spec.name == name:
            return spec
    raise KeyError(f"unknown baseline {name!r}")


def _per_trajectory_budget(n_points: int, ratio: float) -> int:
    # Floor semantics keep the summed "E" budgets within the global budget
    # r * N (the paper's "at most r * N points"); the floor of 2 endpoints
    # is the same feasibility floor every simplifier gets.
    return max(2, int(ratio * n_points))


def simplify_database(
    db: TrajectoryDatabase,
    ratio: float,
    spec: BaselineSpec,
    rlts_policy: RLTSPolicy | None = None,
) -> TrajectoryDatabase:
    """Simplify ``db`` to compression ratio ``ratio`` with one baseline.

    ``rlts_policy`` supplies a trained RLTS+ policy; when omitted an
    untrained (randomly initialized) policy is used, which still runs but
    behaves near-randomly among the J cheapest candidates.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
    budget_total = db.budget_for_ratio(ratio)

    if spec.adaptation == "E":
        if spec.algorithm == "topdown":
            fn = lambda t, b: top_down(t, b, spec.measure)  # noqa: E731
        elif spec.algorithm == "bottomup":
            fn = lambda t, b: bottom_up(t, b, spec.measure)  # noqa: E731
        elif spec.algorithm == "rlts":
            policy = rlts_policy or RLTSPolicy(spec.measure)
            fn = lambda t, b: rlts_simplify(t, b, spec.measure, policy)  # noqa: E731
        else:
            fn = lambda t, b: span_search(t, b, spec.measure)  # noqa: E731
        return db.map_simplify(
            lambda t: fn(t, _per_trajectory_budget(len(t), ratio))
        )

    # "W" adaptation: the whole database as one pool.
    if spec.algorithm == "topdown":
        kept = top_down_database(db, budget_total, spec.measure)
    elif spec.algorithm == "bottomup":
        kept = bottom_up_database(db, budget_total, spec.measure)
    elif spec.algorithm == "rlts":
        policy = rlts_policy or RLTSPolicy(spec.measure)
        kept = rlts_simplify_database(db, budget_total, spec.measure, policy)
    else:  # pragma: no cover - rejected in __post_init__
        raise AssertionError("Span-Search has no 'W' adaptation")
    return TrajectoryDatabase(
        [t.subsample(kept[t.traj_id]) for t in db.trajectories]
    )


# ---------------------------------------------------------------------------
# The Simplifier adapter: one keep-indices interface over the simplifiers
# the serving layer's SimplifyingCompaction can host.
# ---------------------------------------------------------------------------


class Simplifier:
    """One interface over the database simplifiers the service can host.

    :meth:`keep_indices` returns the kept point indices per trajectory
    (always including both endpoints — every simplifier here preserves
    the >= 2-points-per-trajectory invariant the columnar layout
    requires). Instances must be picklable: compaction policies carry
    them into process-executor workers.
    """

    name: str = "abstract"

    def keep_indices(
        self, db: TrajectoryDatabase, ratio: float
    ) -> list[list[int]]:
        raise NotImplementedError

    def simplify(self, db: TrajectoryDatabase, ratio: float) -> TrajectoryDatabase:
        """Materialize the simplified database at ``ratio``."""
        return TrajectoryDatabase(
            [
                t.subsample(kept)
                for t, kept in zip(db.trajectories, self.keep_indices(db, ratio))
            ]
        )


def _recovered_indices(
    original: TrajectoryDatabase, simplified: TrajectoryDatabase
) -> list[list[int]]:
    """Kept indices of a database-valued simplifier's output (timestamp map)."""
    return [
        _recover_indices(orig, simp)
        for orig, simp in zip(original.trajectories, simplified.trajectories)
    ]


class UniformSimplifier(Simplifier):
    """Systematic per-trajectory down-sampling (:mod:`repro.baselines.uniform`)."""

    name = "uniform"

    def keep_indices(self, db, ratio):
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
        return [
            uniform_simplify(t, max(2, int(ratio * len(t))))
            for t in db.trajectories
        ]


class GreedySimplifier(Simplifier):
    """Greedy query-coverage simplification (:mod:`repro.baselines.greedy_qdts`).

    The driving range workload is generated from the database itself
    (data distribution) at call time, so the adapter stays stateless and
    picklable; ``n_queries``/``seed`` pin the workload for determinism.
    """

    name = "greedy"

    def __init__(self, n_queries: int = 32, seed: int = 0) -> None:
        self.n_queries = int(n_queries)
        self.seed = int(seed)

    def keep_indices(self, db, ratio):
        from repro.workloads.generators import RangeQueryWorkload

        workload = RangeQueryWorkload.generate(
            "data", db, self.n_queries, seed=self.seed
        )
        simplified = greedy_qdts_ratio(
            db, ratio, workload, np.random.default_rng(self.seed)
        )
        return _recovered_indices(db, simplified)


class RLSimplifier(Simplifier):
    """The paper's RL4QDTS policy as a service-side simplifier.

    ``model`` is an :class:`~repro.core.rl4qdts.RL4QDTS` instance or a
    path to a model saved with :meth:`RL4QDTS.save`; with neither, a
    fresh (untrained) policy is built on first use. A path-built
    simplifier pickles as the path alone and re-loads lazily on the
    worker side, so trained policies load at service construction without
    shipping agent parameters through the executor pipe.
    """

    name = "rl"

    def __init__(self, model=None, seed: int = 0) -> None:
        self.seed = int(seed)
        self._path = None
        self._model = None
        if isinstance(model, (str, bytes)) or hasattr(model, "__fspath__"):
            self._path = model
        elif model is not None:
            self._model = model

    def _resolve(self):
        if self._model is None:
            from repro.core.rl4qdts import RL4QDTS

            self._model = (
                RL4QDTS.load(self._path) if self._path is not None else RL4QDTS()
            )
        return self._model

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        if state["_path"] is not None:
            state["_model"] = None  # reload from the path on the far side
        return state

    def keep_indices(self, db, ratio):
        simplified = self._resolve().simplify(
            db, budget_ratio=ratio, seed=self.seed
        )
        return _recovered_indices(db, simplified)


#: Simplifier adapters by service-facing name.
SIMPLIFIERS = {
    "uniform": UniformSimplifier,
    "greedy": GreedySimplifier,
    "rl": RLSimplifier,
}


def make_simplifier(spec, *, model=None, **kwargs) -> Simplifier:
    """Build a :class:`Simplifier` from a name or pass an instance through.

    ``model`` only applies to ``"rl"`` (a trained :class:`RL4QDTS` or a
    saved ``.npz`` path); extra kwargs go to the adapter's constructor.
    """
    if isinstance(spec, Simplifier):
        return spec
    if isinstance(spec, str):
        try:
            cls = SIMPLIFIERS[spec]
        except KeyError:
            raise ValueError(
                f"unknown simplifier {spec!r}; choose from {sorted(SIMPLIFIERS)}"
            ) from None
        if cls is RLSimplifier:
            return cls(model=model, **kwargs)
        if model is not None:
            raise ValueError(f"simplifier {spec!r} takes no model")
        return cls(**kwargs)
    raise ValueError(
        f"unknown simplifier {spec!r}; choose from {sorted(SIMPLIFIERS)}"
    )
