"""Bottom-Up simplification (Marteau & Ménier style budgeted dropping).

Starts from the full trajectory and repeatedly *drops* the interior point
whose removal introduces the smallest error — the error of the merged anchor
segment between the point's kept neighbours — until the budget is met. Both
the per-trajectory ("E") and the whole-database ("W") adaptations are
provided; "W" keeps one global candidate heap so over-sampled trajectories
shed points first.

The heaps use lazy invalidation: dropping a point re-scores only its two
neighbours, and stale heap entries are skipped via per-point version stamps.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.errors.segment import segment_error


class _LinkedTrajectory:
    """Doubly-linked kept-point structure for one trajectory."""

    __slots__ = ("points", "prev", "next", "alive", "version", "n_kept")

    def __init__(self, points: np.ndarray) -> None:
        n = len(points)
        self.points = points
        self.prev = np.arange(-1, n - 1)
        self.next = np.arange(1, n + 1)
        self.alive = np.ones(n, dtype=bool)
        self.version = np.zeros(n, dtype=int)
        self.n_kept = n

    def drop_error(self, idx: int, measure: str) -> float:
        return segment_error(
            self.points, int(self.prev[idx]), int(self.next[idx]), measure
        )

    def drop(self, idx: int) -> tuple[int, int]:
        """Remove ``idx``; returns its (former) neighbours for re-scoring."""
        left, right = int(self.prev[idx]), int(self.next[idx])
        self.next[left] = right
        self.prev[right] = left
        self.alive[idx] = False
        self.n_kept -= 1
        self.version[left] += 1
        self.version[right] += 1
        return left, right

    def kept_indices(self) -> list[int]:
        return [int(i) for i in np.flatnonzero(self.alive)]

    def is_interior(self, idx: int) -> bool:
        return self.alive[idx] and 0 < idx < len(self.points) - 1


def bottom_up(
    trajectory: Trajectory | np.ndarray,
    budget: int,
    measure: str = "sed",
) -> list[int]:
    """Kept indices for one trajectory simplified down to ``budget`` points."""
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    )
    if budget < 2:
        raise ValueError("budget must keep at least the two endpoints")
    linked = _LinkedTrajectory(points)
    if budget >= linked.n_kept:
        return list(range(len(points)))
    heap: list[tuple[float, int, int]] = []  # (error, version, idx)
    for idx in range(1, len(points) - 1):
        heapq.heappush(heap, (linked.drop_error(idx, measure), 0, idx))
    while linked.n_kept > budget and heap:
        error, version, idx = heapq.heappop(heap)
        if not linked.is_interior(idx) or version != linked.version[idx]:
            continue
        left, right = linked.drop(idx)
        for nb in (left, right):
            if linked.is_interior(nb):
                heapq.heappush(
                    heap,
                    (linked.drop_error(nb, measure), int(linked.version[nb]), nb),
                )
    return linked.kept_indices()


def bottom_up_database(
    db: TrajectoryDatabase,
    budget: int,
    measure: str = "sed",
) -> list[list[int]]:
    """The "W" adaptation: drop globally cheapest points across the database."""
    if budget < 2 * len(db):
        raise ValueError("budget cannot cover 2 endpoints per trajectory")
    linked = [_LinkedTrajectory(t.points) for t in db]
    total = sum(l.n_kept for l in linked)
    heap: list[tuple[float, int, int, int]] = []  # (error, version, tid, idx)
    for tid, l in enumerate(linked):
        for idx in range(1, len(l.points) - 1):
            heapq.heappush(heap, (l.drop_error(idx, measure), 0, tid, idx))
    while total > budget and heap:
        error, version, tid, idx = heapq.heappop(heap)
        l = linked[tid]
        if not l.is_interior(idx) or version != l.version[idx]:
            continue
        left, right = l.drop(idx)
        total -= 1
        for nb in (left, right):
            if l.is_interior(nb):
                heapq.heappush(
                    heap,
                    (l.drop_error(nb, measure), int(l.version[nb]), tid, nb),
                )
    return [l.kept_indices() for l in linked]
