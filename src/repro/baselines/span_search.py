"""Span-Search: direction-preserving simplification (Long et al., PVLDB'14).

The original algorithm minimizes the direction-based (DAD) error of a
simplified trajectory under a size budget by searching over the error value:
for a candidate error tolerance ``eps`` a greedy one-pass scan produces the
fewest points whose simplification respects ``eps``; binary search over
``eps`` (which for DAD lives in ``[0, pi]``) finds the smallest tolerance
whose greedy result fits the budget.

The paper uses Span-Search as the one DAD-specific baseline; a "W" database
adaptation is not possible (its error search is inherently per-trajectory),
matching the paper's count of 25 baselines.
"""

from __future__ import annotations

import numpy as np

from repro.data.trajectory import Trajectory
from repro.errors.segment import segment_error


def _greedy_simplify(points: np.ndarray, eps: float, measure: str) -> list[int]:
    """One-pass greedy: extend each anchor while its error stays within ``eps``."""
    n = len(points)
    kept = [0]
    anchor = 0
    probe = 1
    while probe < n - 1:
        if segment_error(points, anchor, probe + 1, measure) > eps:
            kept.append(probe)
            anchor = probe
        probe += 1
    kept.append(n - 1)
    return kept


def span_search(
    trajectory: Trajectory | np.ndarray,
    budget: int,
    measure: str = "dad",
    iterations: int = 30,
) -> list[int]:
    """Kept indices minimizing the error subject to ``len(kept) <= budget``.

    Parameters
    ----------
    trajectory:
        The trajectory to simplify.
    budget:
        Maximum number of kept points (>= 2).
    measure:
        Error measure searched over; ``"dad"`` is the algorithm's native
        setting but any bounded measure works.
    iterations:
        Binary-search iterations over the error tolerance.
    """
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    )
    n = len(points)
    if budget < 2:
        raise ValueError("budget must keep at least the two endpoints")
    if budget >= n:
        return list(range(n))
    # Upper bound of the tolerance: DAD is bounded by pi; other measures by
    # the error of the coarsest simplification.
    high = np.pi if measure == "dad" else segment_error(points, 0, n - 1, measure)
    high = max(high, 1e-9)
    low = 0.0
    best = _greedy_simplify(points, high, measure)
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        kept = _greedy_simplify(points, mid, measure)
        if len(kept) <= budget:
            best = kept
            high = mid
        else:
            low = mid
    # The greedy pass may underuse the budget; that is allowed (|T'| <= W).
    return best
