"""Error-driven trajectory simplification baselines (paper, Section V-A).

The paper compares RL4QDTS against 25 adaptations of four EDTS algorithms:

* **Top-Down** (Douglas-Peucker style insertion under a budget),
* **Bottom-Up** (iterative lowest-error point dropping),
* **RLTS+** (reinforcement-learned bottom-up dropping),
* **Span-Search** (direction-preserving simplification, DAD only),

each combined with an error measure (SED / PED / DAD / SAD) and one of two
database adaptations: **"E"** simplifies each trajectory separately with a
proportional budget; **"W"** treats the whole database as one pool and
inserts / drops points globally.
"""

from repro.baselines.topdown import top_down, top_down_database
from repro.baselines.bottomup import bottom_up, bottom_up_database
from repro.baselines.span_search import span_search
from repro.baselines.rlts import RLTSPolicy, rlts_simplify, rlts_simplify_database
from repro.baselines.registry import (
    BaselineSpec,
    GreedySimplifier,
    RLSimplifier,
    SIMPLIFIERS,
    Simplifier,
    UniformSimplifier,
    all_baselines,
    simplify_database,
    get_baseline,
    make_simplifier,
)
from repro.baselines.skyline import skyline
from repro.baselines.online import squish, dead_reckoning, squish_database
from repro.baselines.error_bounded import (
    error_bounded_simplify,
    error_bounded_simplify_database,
)
from repro.baselines.uniform import (
    uniform_simplify,
    random_simplify,
    uniform_simplify_database,
    random_simplify_database,
)
from repro.baselines.greedy_qdts import greedy_qdts, greedy_qdts_ratio
from repro.baselines.optimal import (
    OptimalResult,
    optimal_min_error,
    optimal_min_size,
    optimal_min_error_database,
)

__all__ = [
    "top_down",
    "top_down_database",
    "bottom_up",
    "bottom_up_database",
    "span_search",
    "RLTSPolicy",
    "rlts_simplify",
    "rlts_simplify_database",
    "BaselineSpec",
    "all_baselines",
    "simplify_database",
    "get_baseline",
    "Simplifier",
    "SIMPLIFIERS",
    "UniformSimplifier",
    "GreedySimplifier",
    "RLSimplifier",
    "make_simplifier",
    "skyline",
    "squish",
    "dead_reckoning",
    "squish_database",
    "error_bounded_simplify",
    "error_bounded_simplify_database",
    "uniform_simplify",
    "random_simplify",
    "uniform_simplify_database",
    "random_simplify_database",
    "greedy_qdts",
    "greedy_qdts_ratio",
    "OptimalResult",
    "optimal_min_error",
    "optimal_min_size",
    "optimal_min_error_database",
]
