"""RLTS+: reinforcement-learned bottom-up simplification (Wang et al., ICDE'21).

RLTS+ follows the Bottom-Up strategy but replaces the "drop the minimum
error" heuristic with a learned policy: at each step the ``J`` cheapest drop
candidates are presented and a DQN decides which one to drop. The policy is
trained to minimize the resulting trajectory error (the reward is the
negative error introduced by the chosen drop).

This is a faithful lightweight reimplementation of the original (which is
itself an RL system); see DESIGN.md §4. Both "E" and "W" adaptations are
provided, mirroring :mod:`repro.baselines.bottomup`.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.baselines.bottomup import _LinkedTrajectory
from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.replay import Transition


class RLTSPolicy:
    """The learned drop policy of RLTS+.

    The state is the vector of the ``J`` smallest candidate drop errors
    (zero-padded, scaled by their mean for scale invariance); the action is
    which candidate to drop.
    """

    def __init__(self, measure: str = "sed", j_candidates: int = 3, seed: int = 0):
        if j_candidates < 1:
            raise ValueError("j_candidates must be >= 1")
        self.measure = measure
        self.j = j_candidates
        self.agent = DQNAgent(
            state_dim=j_candidates,
            n_actions=j_candidates,
            config=DQNConfig(hidden=16, learn_start=32),
            seed=seed,
        )
        self.trained = False

    # -------------------------------------------------------------------- state
    def state_of(self, errors: np.ndarray) -> np.ndarray:
        """Normalized state vector from up to ``J`` candidate errors."""
        state = np.zeros(self.j)
        k = min(len(errors), self.j)
        if k:
            scale = float(np.mean(errors[:k])) + 1e-9
            state[:k] = errors[:k] / scale
        return state

    def choose(self, errors: np.ndarray, greedy: bool = True) -> int:
        """Index of the candidate to drop among the ``len(errors)`` presented."""
        mask = np.zeros(self.j, dtype=bool)
        mask[: min(len(errors), self.j)] = True
        return self.agent.act(self.state_of(errors), mask, greedy=greedy)

    # ----------------------------------------------------------------- training
    def train(
        self,
        db: TrajectoryDatabase,
        n_trajectories: int = 10,
        budget_ratio: float = 0.1,
        episodes: int = 2,
        seed: int = 0,
    ) -> "RLTSPolicy":
        """Train on bottom-up episodes over sampled trajectories."""
        rng = np.random.default_rng(seed)
        sample = db.sample(min(n_trajectories, len(db)), rng)
        for _ in range(episodes):
            for traj in sample:
                budget = max(2, int(round(budget_ratio * len(traj))))
                rlts_simplify(traj, budget, self.measure, self, learn=True)
                self.agent.decay_epsilon()
        self.trained = True
        return self


def _candidate_batch(
    heap: list, linked: _LinkedTrajectory, measure: str, j: int
) -> list[tuple[float, int]]:
    """Pop up to ``j`` valid (error, idx) candidates off the lazy heap."""
    batch: list[tuple[float, int]] = []
    while heap and len(batch) < j:
        error, version, idx = heapq.heappop(heap)
        if linked.is_interior(idx) and version == linked.version[idx]:
            batch.append((error, idx))
    return batch


def rlts_simplify(
    trajectory: Trajectory | np.ndarray,
    budget: int,
    measure: str = "sed",
    policy: RLTSPolicy | None = None,
    learn: bool = False,
) -> list[int]:
    """Kept indices for one trajectory under the learned drop policy."""
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    )
    if budget < 2:
        raise ValueError("budget must keep at least the two endpoints")
    policy = policy or RLTSPolicy(measure)
    linked = _LinkedTrajectory(points)
    if budget >= linked.n_kept:
        return list(range(len(points)))
    heap: list[tuple[float, int, int]] = []
    for idx in range(1, len(points) - 1):
        heapq.heappush(heap, (linked.drop_error(idx, measure), 0, idx))
    previous: tuple[np.ndarray, int, float] | None = None
    while linked.n_kept > budget:
        batch = _candidate_batch(heap, linked, measure, policy.j)
        if not batch:
            break
        errors = np.array([e for e, _ in batch])
        action = policy.choose(errors, greedy=not learn)
        action = min(action, len(batch) - 1)
        state = policy.state_of(errors)
        chosen_error, chosen_idx = batch[action]
        # Re-queue the not-chosen candidates.
        for rank, (error, idx) in enumerate(batch):
            if rank != action:
                heapq.heappush(heap, (error, int(linked.version[idx]), idx))
        left, right = linked.drop(chosen_idx)
        for nb in (left, right):
            if linked.is_interior(nb):
                heapq.heappush(
                    heap,
                    (linked.drop_error(nb, measure), int(linked.version[nb]), nb),
                )
        if learn:
            if previous is not None:
                prev_state, prev_action, prev_reward = previous
                mask = np.ones(policy.j, dtype=bool)
                policy.agent.remember(
                    Transition(prev_state, prev_action, prev_reward, state, mask, False)
                )
            previous = (state, action, -chosen_error)
            policy.agent.learn()
    if learn and previous is not None:
        prev_state, prev_action, prev_reward = previous
        policy.agent.remember(
            Transition(
                prev_state,
                prev_action,
                prev_reward,
                prev_state,
                np.ones(policy.j, dtype=bool),
                True,
            )
        )
        policy.agent.learn()
    return linked.kept_indices()


def rlts_simplify_database(
    db: TrajectoryDatabase,
    budget: int,
    measure: str = "sed",
    policy: RLTSPolicy | None = None,
) -> list[list[int]]:
    """The "W" adaptation: learned dropping over one global candidate pool."""
    if budget < 2 * len(db):
        raise ValueError("budget cannot cover 2 endpoints per trajectory")
    policy = policy or RLTSPolicy(measure)
    linked = [_LinkedTrajectory(t.points) for t in db]
    total = sum(l.n_kept for l in linked)
    heap: list[tuple[float, int, int, int]] = []
    for tid, l in enumerate(linked):
        for idx in range(1, len(l.points) - 1):
            heapq.heappush(heap, (l.drop_error(idx, measure), 0, tid, idx))
    while total > budget:
        batch: list[tuple[float, int, int]] = []
        while heap and len(batch) < policy.j:
            error, version, tid, idx = heapq.heappop(heap)
            if linked[tid].is_interior(idx) and version == linked[tid].version[idx]:
                batch.append((error, tid, idx))
        if not batch:
            break
        errors = np.array([e for e, _, _ in batch])
        action = min(policy.choose(errors, greedy=True), len(batch) - 1)
        for rank, (error, tid, idx) in enumerate(batch):
            if rank != action:
                heapq.heappush(heap, (error, int(linked[tid].version[idx]), tid, idx))
        _, tid, idx = batch[action]
        left, right = linked[tid].drop(idx)
        total -= 1
        for nb in (left, right):
            if linked[tid].is_interior(nb):
                heapq.heappush(
                    heap,
                    (
                        linked[tid].drop_error(nb, measure),
                        int(linked[tid].version[nb]),
                        tid,
                        nb,
                    ),
                )
    return [l.kept_indices() for l in linked]
