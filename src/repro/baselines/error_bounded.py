"""Error-bounded simplification (the dual EDTS problem).

The paper's problem family fixes a *size* budget and minimizes error; the
dual family (its Related Work, "Other Types of Trajectory Simplification")
fixes an *error tolerance* and minimizes size. The one-pass greedy below is
the classical batch algorithm for it: extend each anchor segment while its
error stays within the tolerance, cut one point before the first violation.

The greedy is also the feasibility oracle inside
:mod:`repro.baselines.span_search`; exposing it publicly lets users simplify
to a quality target instead of a storage target.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.span_search import _greedy_simplify
from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.errors.measures import MEASURES


def error_bounded_simplify(
    trajectory: Trajectory | np.ndarray,
    tolerance: float,
    measure: str = "sed",
) -> list[int]:
    """Fewest kept indices whose simplification error stays within tolerance.

    The result is the greedy one-pass approximation (optimal algorithms are
    cubic; see the paper's Related Work). Every simplified segment's error
    under ``measure`` is at most ``tolerance``.
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    if measure not in MEASURES:
        raise ValueError(
            f"unknown measure {measure!r}; choose from {sorted(MEASURES)}"
        )
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    )
    return _greedy_simplify(points, tolerance, measure)


def error_bounded_simplify_database(
    db: TrajectoryDatabase,
    tolerance: float,
    measure: str = "sed",
) -> TrajectoryDatabase:
    """Apply :func:`error_bounded_simplify` to every trajectory."""
    return db.map_simplify(
        lambda t: error_bounded_simplify(t, tolerance, measure)
    )
