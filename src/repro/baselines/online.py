"""Online (streaming) simplification algorithms.

The paper's related work covers a second EDTS family: *online* algorithms
that see points one at a time and may not revisit dropped ones. Two classics
are provided as extensions so the batch methods have streaming counterparts:

* **SQUISH** (Muckell et al., 2011): a bounded buffer of kept points with a
  priority queue — when the buffer overflows, the point whose removal adds
  the least SED is dropped and its error is *bequeathed* to its neighbours
  (so repeatedly squeezed regions grow resistant to further dropping).
* **Dead reckoning** (Potamias et al., SSDBM'06): keep a point only when the
  position predicted by linear extrapolation from the last kept point drifts
  beyond a threshold — an error-bounded online filter.

Both consume the point stream strictly left to right.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.data.trajectory import Trajectory
from repro.errors.measures import sed_point_errors


def _sed_of_middle(points: np.ndarray, left: int, mid: int, right: int) -> float:
    """SED of point ``mid`` against the segment ``left -> right``."""
    errors = sed_point_errors(points[[left, mid, right]], 0, 2)
    return float(errors[0]) if len(errors) else 0.0


def squish(
    trajectory: Trajectory | np.ndarray,
    budget: int,
) -> list[int]:
    """SQUISH: streaming simplification with a size-``budget`` buffer.

    Returns the kept indices (always includes both endpoints). Matches the
    original algorithm: priorities accumulate bequeathed error, so the
    output is order-dependent in exactly the way a streaming consumer
    experiences.
    """
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    )
    n = len(points)
    if budget < 2:
        raise ValueError("budget must keep at least the two endpoints")
    if budget >= n:
        return list(range(n))

    # Doubly-linked buffer over original indices.
    prev: dict[int, int] = {}
    nxt: dict[int, int] = {}
    priority: dict[int, float] = {}
    version: dict[int, int] = {}
    heap: list[tuple[float, int, int]] = []
    buffered: list[int] = []

    def push(idx: int) -> None:
        version[idx] = version.get(idx, 0) + 1
        heapq.heappush(heap, (priority[idx], version[idx], idx))

    def set_priority(idx: int, value: float) -> None:
        priority[idx] = value
        push(idx)

    def recompute(idx: int) -> None:
        if idx in prev and idx in nxt:
            base = _sed_of_middle(points, prev[idx], idx, nxt[idx])
            set_priority(idx, bequeathed.get(idx, 0.0) + base)

    bequeathed: dict[int, float] = {}
    for i in range(n):
        buffered.append(i)
        if len(buffered) >= 2:
            prev[i] = buffered[-2]
            nxt[buffered[-2]] = i
        if len(buffered) >= 3:
            recompute(buffered[-2])
        if len(buffered) > budget:
            # Pop the lowest-priority interior point (endpoints immortal).
            while True:
                value, ver, idx = heapq.heappop(heap)
                if (
                    idx in prev
                    and idx in nxt
                    and version.get(idx) == ver
                ):
                    break
            left, right = prev.pop(idx), nxt.pop(idx)
            nxt[left] = right
            prev[right] = left
            buffered.remove(idx)
            # Bequeath the removed point's priority to its neighbours.
            for nb in (left, right):
                bequeathed[nb] = bequeathed.get(nb, 0.0) + value
                recompute(nb)
    return sorted(buffered)


def dead_reckoning(
    trajectory: Trajectory | np.ndarray,
    threshold: float,
) -> list[int]:
    """Keep a point when linear extrapolation drifts beyond ``threshold``.

    The predictor extrapolates from the last kept point with the velocity
    observed at keep time; a point whose actual position deviates more than
    ``threshold`` from the prediction is kept and the predictor restarts.
    The final point is always kept.
    """
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    )
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    n = len(points)
    kept = [0]
    anchor = points[0]
    if n > 1:
        dt0 = max(points[1, 2] - points[0, 2], 1e-9)
        velocity = (points[1, :2] - points[0, :2]) / dt0
    else:
        velocity = np.zeros(2)
    for i in range(1, n - 1):
        elapsed = points[i, 2] - anchor[2]
        predicted = anchor[:2] + velocity * elapsed
        if np.linalg.norm(points[i, :2] - predicted) > threshold:
            kept.append(i)
            anchor = points[i]
            dt = max(points[i + 1, 2] - points[i, 2], 1e-9)
            velocity = (points[i + 1, :2] - points[i, :2]) / dt
    kept.append(n - 1)
    return kept


def squish_database(
    db,
    budget: int,
) -> dict[int, list[int]]:
    """Whole-database SQUISH: one shared buffer across all trajectories.

    The streaming analogue of the paper's "W" adaptations: points from all
    trajectories arrive interleaved in *timestamp order* (a fleet's combined
    telemetry feed) and compete for one global buffer of ``budget`` points.
    Eviction picks the globally lowest-priority interior point, so simple
    trajectories are squeezed harder than complex ones — the collective
    behaviour that per-trajectory budgets cannot express.

    Returns the kept indices per trajectory id. Endpoints (each
    trajectory's first point and its latest-seen point) are never evicted,
    so ``budget`` must be at least ``2 * len(db)``.
    """
    n_total = db.total_points
    if budget < 2 * len(db):
        raise ValueError(
            f"budget {budget} cannot cover 2 endpoints per trajectory"
        )
    if budget >= n_total:
        return {t.traj_id: list(range(len(t))) for t in db}

    # Interleave all points by timestamp (ties broken by trajectory id).
    stream = sorted(
        (float(t.points[i, 2]), t.traj_id, i)
        for t in db
        for i in range(len(t))
    )

    prev: dict[tuple[int, int], tuple[int, int]] = {}
    nxt: dict[tuple[int, int], tuple[int, int]] = {}
    priority: dict[tuple[int, int], float] = {}
    version: dict[tuple[int, int], int] = {}
    bequeathed: dict[tuple[int, int], float] = {}
    heap: list[tuple[float, int, int, int]] = []
    buffered: set[tuple[int, int]] = set()
    last_seen: dict[int, tuple[int, int]] = {}

    def push(key: tuple[int, int]) -> None:
        version[key] = version.get(key, 0) + 1
        heapq.heappush(heap, (priority[key], version[key], key[0], key[1]))

    def recompute(key: tuple[int, int]) -> None:
        if key in prev and key in nxt and nxt[key] != key:
            tid = key[0]
            points = db[tid].points
            base = _sed_of_middle(points, prev[key][1], key[1], nxt[key][1])
            priority[key] = bequeathed.get(key, 0.0) + base
            push(key)

    def evict_one() -> None:
        while True:
            value, ver, tid, idx = heapq.heappop(heap)
            key = (tid, idx)
            if (
                key in buffered
                and key in prev
                and key in nxt
                and version.get(key) == ver
                and last_seen[tid] != key
                and idx != 0
            ):
                break
        left, right = prev.pop(key), nxt.pop(key)
        nxt[left] = right
        prev[right] = left
        buffered.discard(key)
        for nb in (left, right):
            bequeathed[nb] = bequeathed.get(nb, 0.0) + value
            recompute(nb)

    for _, tid, idx in stream:
        key = (tid, idx)
        buffered.add(key)
        if tid in last_seen:
            previous = last_seen[tid]
            prev[key] = previous
            nxt[previous] = key
            recompute(previous)
        last_seen[tid] = key
        if len(buffered) > budget:
            evict_one()

    kept: dict[int, list[int]] = {t.traj_id: [] for t in db}
    for tid, idx in buffered:
        kept[tid].append(idx)
    return {tid: sorted(idxs) for tid, idxs in kept.items()}
