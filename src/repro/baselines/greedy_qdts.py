"""GreedyQDTS: query-aware greedy insertion without reinforcement learning.

RL4QDTS's core bet is that *learning* where to spend budget beats both
error-driven heuristics and naive strategies. The natural non-learning
comparator is plain greedy maximization of the QDTS objective itself:
starting from the endpoints-only database, repeatedly insert the point whose
insertion most increases the mean range-query F1 on a training workload
(Eq. 3), then fill any budget that query coverage cannot use.

This is weighted maximum coverage: inserting point ``p`` of trajectory
``tid`` adds ``tid`` to the result set of every workload query whose box
contains ``p``, and the F1 delta of each affected query is computable in
O(1) from its count state. Marginal gains are maintained CELF-style: a
max-heap of stale gains with exact recomputation on pop (entries are marked
dirty when one of their queries changes), so each step costs ~O(log N) pops
instead of a full re-scan.

GreedyQDTS is *workload-optimal in hindsight* for the training queries but,
unlike RL4QDTS, has no generalization mechanism: it covers the sampled
training boxes exactly and spends nothing on the distribution around them.
The benchmark (``benchmarks/bench_greedy_qdts.py``) measures how much that
matters on held-out queries.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.simplification import SimplificationState
from repro.queries.engine import QueryEngine
from repro.workloads.generators import RangeQueryWorkload


class _QueryCounters:
    """Per-query F1 bookkeeping from set-size counters."""

    __slots__ = ("truth", "in_result", "overlap", "size")

    def __init__(self, truth: set[int]) -> None:
        self.truth = truth
        self.in_result: set[int] = set()
        self.overlap = 0
        self.size = 0

    def f1(self) -> float:
        if not self.truth and not self.in_result:
            return 1.0
        if self.overlap == 0:
            return 0.0
        p = self.overlap / self.size
        r = self.overlap / len(self.truth) if self.truth else 0.0
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)

    def gain_of(self, traj_id: int) -> float:
        """F1 delta if ``traj_id`` joined this query's result set."""
        if traj_id in self.in_result:
            return 0.0
        before = self.f1()
        self.size += 1
        hit = traj_id in self.truth
        if hit:
            self.overlap += 1
        after = self.f1()
        self.size -= 1
        if hit:
            self.overlap -= 1
        return after - before

    def add(self, traj_id: int) -> None:
        if traj_id in self.in_result:
            return
        self.in_result.add(traj_id)
        self.size += 1
        if traj_id in self.truth:
            self.overlap += 1


def greedy_qdts(
    db: TrajectoryDatabase,
    budget: int,
    workload: RangeQueryWorkload,
    rng: np.random.Generator | None = None,
) -> TrajectoryDatabase:
    """Greedy query-coverage simplification of ``db`` to ``budget`` points.

    Parameters
    ----------
    db:
        Database to simplify.
    budget:
        Total points to keep (at least two per trajectory).
    workload:
        The training range queries whose mean F1 the greedy maximizes; its
        ground truth is evaluated on ``db``.
    rng:
        Source of randomness for spending leftover budget on points that no
        query can use (defaults to a fixed seed).
    """
    if budget < 2 * len(db):
        raise ValueError(
            f"budget {budget} cannot cover 2 endpoints per trajectory"
        )
    rng = rng or np.random.default_rng(0)
    state = SimplificationState(db)

    engine = QueryEngine.for_database(db)
    counters = [_QueryCounters(truth) for truth in engine.evaluate(workload)]

    # All (point, query) containment pairs from one batched CSR sweep of the
    # engine. Endpoint rows enter the counters directly (they are always
    # kept); interior rows inside at least one box form the candidate pool.
    offsets = db.point_offsets()
    owners = db.point_ownership()
    is_endpoint = np.zeros(db.total_points, dtype=bool)
    is_endpoint[offsets[:-1]] = True
    is_endpoint[offsets[1:] - 1] = True
    point_queries: dict[tuple[int, int], np.ndarray] = {}
    member_rows, member_queries = engine.point_memberships(workload.boxes)
    unique_rows, row_starts = np.unique(member_rows, return_index=True)
    row_bounds = np.append(row_starts, len(member_rows))
    for row, start, stop in zip(unique_rows, row_bounds[:-1], row_bounds[1:]):
        tid = int(owners[row])
        hits = member_queries[start:stop]
        if is_endpoint[row]:
            for qi in hits:
                counters[qi].add(tid)
        else:
            point_queries[(tid, int(row) - int(offsets[tid]))] = hits

    def gain(key: tuple[int, int]) -> float:
        tid = key[0]
        return sum(counters[qi].gain_of(tid) for qi in point_queries[key])

    heap: list[tuple[float, int, int]] = [
        (-gain(key), key[0], key[1]) for key in point_queries
    ]
    heapq.heapify(heap)

    # CELF loop: stale gains can only be too optimistic for this objective's
    # positive part, so re-evaluating the top and comparing against the next
    # stale value yields the exact argmax whenever gains have not increased.
    while state.total_kept < budget and heap:
        neg_stale, tid, idx = heapq.heappop(heap)
        if state.is_kept(tid, idx):
            continue
        fresh = gain((tid, idx))
        if fresh <= 0.0:
            continue  # cannot help any query anymore
        if heap and -heap[0][0] > fresh + 1e-15:
            heapq.heappush(heap, (-fresh, tid, idx))
            continue
        state.insert(tid, idx)
        for qi in point_queries[(tid, idx)]:
            counters[qi].add(tid)

    # Spend whatever coverage could not use on uniformly random points, so
    # the returned database honours the budget like every other method.
    leftovers = [
        (t.traj_id, i)
        for t in db
        for i in range(1, len(t) - 1)
        if not state.is_kept(t.traj_id, i)
    ]
    rng.shuffle(leftovers)
    for tid, idx in leftovers:
        if state.total_kept >= budget:
            break
        state.insert(tid, idx)
    return state.materialize()


def greedy_qdts_ratio(
    db: TrajectoryDatabase,
    ratio: float,
    workload: RangeQueryWorkload,
    rng: np.random.Generator | None = None,
) -> TrajectoryDatabase:
    """:func:`greedy_qdts` with the budget given as a compression ratio."""
    return greedy_qdts(db, db.budget_for_ratio(ratio), workload, rng)
