"""Top-Down simplification (Hershberger & Snoeyink's budgeted Douglas-Peucker).

Starts from the endpoints and repeatedly *inserts* the point with the largest
error under the chosen measure until the budget is reached (paper, Section
II). Both the per-trajectory ("E") and the whole-database ("W") adaptations
are provided; the "W" variant maintains one global priority queue over the
segments of every trajectory, so complex trajectories absorb more budget.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.errors.measures import (
    dad_segment_errors,
    ped_point_errors,
    sad_segment_errors,
    sed_point_errors,
)

_POINT_ERROR_FNS = {"sed": sed_point_errors, "ped": ped_point_errors}
_SEGMENT_ERROR_FNS = {"dad": dad_segment_errors, "sad": sad_segment_errors}


def split_point(
    points: np.ndarray, s: int, e: int, measure: str
) -> tuple[float, int]:
    """The worst error inside anchor ``(s, e)`` and the index to split at.

    For point-based measures (SED / PED) the split is the worst interior
    point. For segment-based measures (DAD / SAD) the worst constituent
    segment is located and the split lands on an interior endpoint of it.
    """
    if e - s < 2:
        return 0.0, -1
    if measure in _POINT_ERROR_FNS:
        errors = _POINT_ERROR_FNS[measure](points, s, e)
        offset = int(np.argmax(errors))
        return float(errors[offset]), s + 1 + offset
    if measure in _SEGMENT_ERROR_FNS:
        errors = _SEGMENT_ERROR_FNS[measure](points, s, e)
        seg = int(np.argmax(errors))  # segment (s + seg, s + seg + 1)
        idx = s + seg if seg > 0 else s + 1
        return float(errors[seg]), min(max(idx, s + 1), e - 1)
    raise ValueError(f"unknown measure {measure!r}")


def top_down(
    trajectory: Trajectory | np.ndarray,
    budget: int,
    measure: str = "sed",
) -> list[int]:
    """Kept indices for one trajectory simplified to ``budget`` points."""
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    )
    n = len(points)
    if budget < 2:
        raise ValueError("budget must keep at least the two endpoints")
    kept = [0, n - 1]
    if budget >= n:
        return list(range(n))
    # Max-heap of (negated error, tie-break, s, e, split index).
    heap: list[tuple[float, int, int, int, int]] = []
    counter = 0

    def push(s: int, e: int) -> None:
        nonlocal counter
        error, idx = split_point(points, s, e, measure)
        if idx >= 0:
            heapq.heappush(heap, (-error, counter, s, e, idx))
            counter += 1

    push(0, n - 1)
    while len(kept) < budget and heap:
        _, _, s, e, idx = heapq.heappop(heap)
        kept.append(idx)
        push(s, idx)
        push(idx, e)
    return sorted(kept)


def top_down_database(
    db: TrajectoryDatabase,
    budget: int,
    measure: str = "sed",
) -> list[list[int]]:
    """The "W" adaptation: insert globally worst points across the database.

    Returns the kept-index list per trajectory; total kept points equal
    ``budget`` (floored at two endpoints per trajectory).
    """
    if budget < 2 * len(db):
        raise ValueError("budget cannot cover 2 endpoints per trajectory")
    kept: list[list[int]] = [[0, len(t) - 1] for t in db]
    total = 2 * len(db)
    heap: list[tuple[float, int, int, int, int, int]] = []
    counter = 0

    def push(tid: int, s: int, e: int) -> None:
        nonlocal counter
        error, idx = split_point(db[tid].points, s, e, measure)
        if idx >= 0:
            heapq.heappush(heap, (-error, counter, tid, s, e, idx))
            counter += 1

    for traj in db:
        push(traj.traj_id, 0, len(traj) - 1)
    while total < budget and heap:
        _, _, tid, s, e, idx = heapq.heappop(heap)
        kept[tid].append(idx)
        total += 1
        push(tid, s, idx)
        push(tid, idx, e)
    return [sorted(k) for k in kept]
