"""Optimal error-driven simplification by dynamic programming.

The paper (Section II) notes that exact EDTS algorithms exist — dynamic
programming or binary search over candidate errors, following Chan & Chin
(1996) and Bellman (1961) — but are cubic-time and therefore impractical at
database scale. We implement them anyway, for two purposes:

* as a **test oracle**: the heuristic baselines (Top-Down, Bottom-Up, RLTS+)
  can never beat the optimum, which gives a strong correctness invariant for
  the whole baseline stack, and
* as a **quality-gap benchmark** (``benchmarks/bench_optimal_gap.py``):
  how far from optimal are the practical heuristics on small inputs?

Two dual problems are solved exactly:

* :func:`optimal_min_error` — the EDTS problem itself: keep at most ``W``
  points (including both endpoints) minimizing the trajectory error
  (Eqs. 1-2) under a chosen measure;
* :func:`optimal_min_size` — the error-bounded dual: keep as few points as
  possible such that the trajectory error stays within a tolerance.

Both run in O(n^2) segment-error evaluations; with O(n)-time per-segment
errors this is the cubic behaviour the paper describes. Use on short
trajectories only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.errors.segment import segment_error


@dataclass(frozen=True, slots=True)
class OptimalResult:
    """The kept indices and the (optimal) resulting trajectory error."""

    indices: tuple[int, ...]
    error: float


class _PairCostCache:
    """Lazily evaluated segment errors ``eps(p_s p_e)`` for one trajectory."""

    __slots__ = ("points", "measure", "_cache")

    def __init__(self, points: np.ndarray, measure: str) -> None:
        self.points = points
        self.measure = measure
        self._cache: dict[tuple[int, int], float] = {}

    def cost(self, s: int, e: int) -> float:
        key = (s, e)
        value = self._cache.get(key)
        if value is None:
            value = segment_error(self.points, s, e, self.measure)
            self._cache[key] = value
        return value


def _validate(points: np.ndarray, budget: int | None) -> int:
    n = len(points)
    if n < 2:
        raise ValueError("need at least 2 points")
    if budget is not None:
        if budget < 2:
            raise ValueError(f"budget must be >= 2, got {budget}")
        return min(budget, n)
    return n


def optimal_min_error(
    trajectory: Trajectory | np.ndarray,
    budget: int,
    measure: str = "sed",
) -> OptimalResult:
    """Minimum achievable trajectory error keeping at most ``budget`` points.

    Implements the min-max dynamic program

    ``E[j][k] = min_{i < j} max(E[i][k-1], eps(p_i p_j))``

    where ``E[j][k]`` is the best error of a simplification of the prefix
    ``p_0..p_j`` that keeps exactly ``k`` points and ends at ``p_j``. The
    answer is ``E[n-1][budget]`` and the kept indices are recovered by
    backtracking.

    Parameters
    ----------
    trajectory:
        A :class:`~repro.data.Trajectory` or raw ``(n, 3)`` array.
    budget:
        Maximum number of kept points (>= 2); endpoints always count.
    measure:
        One of ``"sed"``, ``"ped"``, ``"dad"``, ``"sad"``.
    """
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else
        np.asarray(trajectory, dtype=float)
    )
    budget = _validate(points, budget)
    n = len(points)
    if budget >= n:
        return OptimalResult(tuple(range(n)), 0.0)
    costs = _PairCostCache(points, measure)

    inf = float("inf")
    # best[j] at round k: optimal error ending at j with exactly k kept points.
    best = np.full(n, inf)
    best[0] = 0.0
    parent = np.full((budget + 1, n), -1, dtype=int)
    for k in range(2, budget + 1):
        nxt = np.full(n, inf)
        # j can be at most n-1; ending index needs k-1 predecessors.
        for j in range(k - 1, n):
            best_val = inf
            best_i = -1
            for i in range(k - 2, j):
                prev = best[i]
                if prev >= best_val:
                    continue
                value = max(prev, costs.cost(i, j))
                if value < best_val:
                    best_val = value
                    best_i = i
            nxt[j] = best_val
            parent[k, j] = best_i
        best = nxt
        if best[n - 1] == 0.0:
            budget = k  # already lossless with fewer points
            break

    indices = [n - 1]
    k, j = budget, n - 1
    while parent[k, j] >= 0:
        j = int(parent[k, j])
        indices.append(j)
        k -= 1
    indices.reverse()
    if indices[0] != 0:  # pragma: no cover - DP guarantees this
        raise AssertionError("backtracking did not reach the first point")
    return OptimalResult(tuple(indices), float(best[n - 1]))


def optimal_min_size(
    trajectory: Trajectory | np.ndarray,
    tolerance: float,
    measure: str = "sed",
) -> OptimalResult:
    """Fewest kept points whose trajectory error is within ``tolerance``.

    Breadth-first search over the DAG whose edge ``(i, j)`` exists when
    ``eps(p_i p_j) <= tolerance``: the shortest path from point 0 to point
    ``n - 1`` (in hops) is a minimum-size feasible simplification (Bellman's
    formulation of the error-bounded dual).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be non-negative")
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else
        np.asarray(trajectory, dtype=float)
    )
    _validate(points, None)
    n = len(points)
    costs = _PairCostCache(points, measure)

    parent = np.full(n, -1, dtype=int)
    visited = np.zeros(n, dtype=bool)
    visited[0] = True
    frontier = [0]
    while frontier and not visited[n - 1]:
        next_frontier: list[int] = []
        for i in frontier:
            # Scan farthest-first so long feasible jumps are claimed early.
            for j in range(n - 1, i, -1):
                if visited[j]:
                    continue
                if costs.cost(i, j) <= tolerance:
                    visited[j] = True
                    parent[j] = i
                    next_frontier.append(j)
        frontier = next_frontier
    if not visited[n - 1]:  # pragma: no cover - (i, i+1) edges cost 0
        raise AssertionError("the endpoint is always reachable")

    indices = [n - 1]
    j = n - 1
    while parent[j] >= 0:
        j = int(parent[j])
        indices.append(j)
    indices.reverse()
    error = max(
        (costs.cost(s, e) for s, e in zip(indices, indices[1:])), default=0.0
    )
    return OptimalResult(tuple(indices), float(error))


def optimal_min_error_database(
    db: TrajectoryDatabase,
    ratio: float,
    measure: str = "sed",
) -> TrajectoryDatabase:
    """Per-trajectory optimal simplification with a uniform ratio.

    Each trajectory gets the proportional budget ``max(2, round(ratio * n))``
    (the "E" adaptation of the paper's baselines, but with the exact solver).
    Cubic per trajectory — intended for small benchmark databases only.
    """
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"ratio must be in (0, 1], got {ratio}")

    def simplify(traj: Trajectory) -> list[int]:
        budget = max(2, int(round(ratio * len(traj))))
        return list(optimal_min_error(traj, budget, measure).indices)

    return db.map_simplify(simplify)
