"""Budget-matched naive simplifiers used as sanity floors.

Neither appears in the paper's baseline list — every published EDTS method
beats them — but they anchor the benchmark results: any method worth its
complexity must clear both.

* :func:`uniform_simplify` keeps every k-th point (systematic sampling),
  which is what a practitioner gets from naive down-sampling.
* :func:`random_simplify` keeps a uniformly random subset of interior
  points.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


def uniform_simplify(
    trajectory: Trajectory | np.ndarray, budget: int
) -> list[int]:
    """Keep ``budget`` points at (approximately) regular index spacing."""
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    )
    n = len(points)
    if budget < 2:
        raise ValueError("budget must keep at least the two endpoints")
    if budget >= n:
        return list(range(n))
    kept = np.unique(np.round(np.linspace(0, n - 1, budget)).astype(int))
    return [int(i) for i in kept]


def random_simplify(
    trajectory: Trajectory | np.ndarray,
    budget: int,
    rng: np.random.Generator,
) -> list[int]:
    """Keep the endpoints plus a random subset of interior points."""
    points = (
        trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    )
    n = len(points)
    if budget < 2:
        raise ValueError("budget must keep at least the two endpoints")
    if budget >= n:
        return list(range(n))
    interior = rng.choice(np.arange(1, n - 1), size=budget - 2, replace=False)
    return sorted({0, n - 1, *(int(i) for i in interior)})


def uniform_simplify_database(
    db: TrajectoryDatabase, ratio: float
) -> TrajectoryDatabase:
    """Systematic down-sampling of every trajectory at the same ratio."""
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
    return db.map_simplify(
        lambda t: uniform_simplify(t, max(2, int(ratio * len(t))))
    )


def random_simplify_database(
    db: TrajectoryDatabase, ratio: float, seed: int | None = None
) -> TrajectoryDatabase:
    """Random down-sampling of every trajectory at the same ratio."""
    if not 0.0 < ratio <= 1.0:
        raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
    rng = np.random.default_rng(seed)
    return db.map_simplify(
        lambda t: random_simplify(t, max(2, int(ratio * len(t))), rng)
    )
