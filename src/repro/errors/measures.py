"""Vectorized implementations of SED, PED, DAD, and SAD.

All functions take the full ``(n, 3)`` point matrix of one trajectory plus
the anchor indices ``s < e`` and evaluate the error of the anchor segment
``p_s p_e`` over everything it replaces (Eq. 1): interior *points*
``p_{s+1} .. p_{e-1}`` for SED/PED, constituent *segments*
``p_s p_{s+1} .. p_{e-1} p_e`` for DAD/SAD.

Degenerate geometry conventions (documented because real GPS data hits them):

* zero-duration anchors synchronize everything to the anchor start;
* zero-length anchors measure PED as plain Euclidean distance to the start;
* zero-length original segments carry no direction, so their DAD is 0;
* a zero-length anchor under DAD is maximally wrong (``pi``) for any moving
  original segment.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


def synchronized_positions(points: np.ndarray, s: int, e: int) -> np.ndarray:
    """Time-synchronized ``(x, y)`` on the anchor ``p_s p_e`` for interior points.

    Returns an ``(e - s - 1, 2)`` array: for each original interior point, the
    location that the simplified trajectory would report at that timestamp.
    """
    a, b = points[s], points[e]
    interior = points[s + 1 : e]
    dt = b[2] - a[2]
    if dt <= _EPS:
        return np.tile(a[:2], (len(interior), 1))
    frac = (interior[:, 2] - a[2]) / dt
    return a[:2] + frac[:, None] * (b[:2] - a[:2])


def sed_point_errors(points: np.ndarray, s: int, e: int) -> np.ndarray:
    """Per-interior-point SED for the anchor ``p_s p_e``."""
    if e - s < 2:
        return np.empty(0)
    sync = synchronized_positions(points, s, e)
    return np.linalg.norm(points[s + 1 : e, :2] - sync, axis=1)


def sed_error(points: np.ndarray, s: int, e: int) -> float:
    """SED of the anchor segment ``p_s p_e`` (Eq. 1 instantiated with SED)."""
    errs = sed_point_errors(points, s, e)
    return float(errs.max()) if len(errs) else 0.0


def ped_point_errors(points: np.ndarray, s: int, e: int) -> np.ndarray:
    """Per-interior-point perpendicular distance to the anchor line."""
    if e - s < 2:
        return np.empty(0)
    a = points[s, :2]
    b = points[e, :2]
    interior = points[s + 1 : e, :2]
    ab = b - a
    norm_ab = np.linalg.norm(ab)
    if norm_ab <= _EPS:
        return np.linalg.norm(interior - a, axis=1)
    # |cross product| / |ab| gives the distance to the infinite line.
    diff = interior - a
    cross = np.abs(diff[:, 0] * ab[1] - diff[:, 1] * ab[0])
    return cross / norm_ab


def ped_error(points: np.ndarray, s: int, e: int) -> float:
    """PED of the anchor segment ``p_s p_e``."""
    errs = ped_point_errors(points, s, e)
    return float(errs.max()) if len(errs) else 0.0


def _angular_distance(angles_a: np.ndarray, angle_b: float) -> np.ndarray:
    """Absolute angle difference wrapped to ``[0, pi]``."""
    diff = np.abs(angles_a - angle_b) % (2.0 * np.pi)
    return np.minimum(diff, 2.0 * np.pi - diff)


def dad_segment_errors(points: np.ndarray, s: int, e: int) -> np.ndarray:
    """Per-original-segment direction error against the anchor direction."""
    if e - s < 2:
        return np.empty(0)
    deltas = np.diff(points[s : e + 1, :2], axis=0)
    lengths = np.linalg.norm(deltas, axis=1)
    anchor = points[e, :2] - points[s, :2]
    anchor_len = np.linalg.norm(anchor)
    moving = lengths > _EPS
    errors = np.zeros(len(deltas))
    if anchor_len <= _EPS:
        errors[moving] = np.pi  # undirected anchor cannot represent movement
        return errors
    anchor_angle = float(np.arctan2(anchor[1], anchor[0]))
    seg_angles = np.arctan2(deltas[moving, 1], deltas[moving, 0])
    errors[moving] = _angular_distance(seg_angles, anchor_angle)
    return errors


def dad_error(points: np.ndarray, s: int, e: int) -> float:
    """DAD of the anchor segment ``p_s p_e`` (radians, in ``[0, pi]``)."""
    errs = dad_segment_errors(points, s, e)
    return float(errs.max()) if len(errs) else 0.0


def sad_segment_errors(points: np.ndarray, s: int, e: int) -> np.ndarray:
    """Per-original-segment speed error against the anchor's average speed."""
    if e - s < 2:
        return np.empty(0)
    seg = points[s : e + 1]
    deltas = np.diff(seg[:, :2], axis=0)
    dts = np.diff(seg[:, 2])
    speeds = np.linalg.norm(deltas, axis=1) / np.maximum(dts, _EPS)
    anchor_dt = points[e, 2] - points[s, 2]
    anchor_speed = (
        np.linalg.norm(points[e, :2] - points[s, :2]) / max(anchor_dt, _EPS)
    )
    return np.abs(speeds - anchor_speed)


def sad_error(points: np.ndarray, s: int, e: int) -> float:
    """SAD of the anchor segment ``p_s p_e`` (metres / second)."""
    errs = sad_segment_errors(points, s, e)
    return float(errs.max()) if len(errs) else 0.0


#: Registry of segment-error functions by measure name.
MEASURES = {
    "sed": sed_error,
    "ped": ped_error,
    "dad": dad_error,
    "sad": sad_error,
}
