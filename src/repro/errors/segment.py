"""Segment- and trajectory-level error aggregation (Eqs. 1-2)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.errors.measures import MEASURES


def segment_error(points: np.ndarray, s: int, e: int, measure: str = "sed") -> float:
    """Error of the anchor segment ``p_s p_e`` under the chosen measure (Eq. 1)."""
    try:
        fn = MEASURES[measure]
    except KeyError:
        raise ValueError(
            f"unknown measure {measure!r}; choose from {sorted(MEASURES)}"
        ) from None
    if not 0 <= s < e < len(points):
        raise ValueError(f"invalid anchor indices s={s}, e={e} for n={len(points)}")
    return fn(points, s, e)


def trajectory_error(
    trajectory: Trajectory | np.ndarray,
    kept_indices: Sequence[int],
    measure: str = "sed",
) -> float:
    """Error of a simplified trajectory: max over its simplified segments (Eq. 2).

    Parameters
    ----------
    trajectory:
        The *original* trajectory (or its ``(n, 3)`` point matrix).
    kept_indices:
        Sorted indices of the kept points; must include 0 and ``n - 1``.
    measure:
        One of ``"sed"``, ``"ped"``, ``"dad"``, ``"sad"``.
    """
    points = trajectory.points if isinstance(trajectory, Trajectory) else trajectory
    kept = sorted(set(int(i) for i in kept_indices))
    if not kept or kept[0] != 0 or kept[-1] != len(points) - 1:
        raise ValueError("kept indices must include both endpoints")
    worst = 0.0
    for s, e in zip(kept, kept[1:]):
        worst = max(worst, segment_error(points, s, e, measure))
    return worst


def database_errors(
    original: TrajectoryDatabase,
    simplified: TrajectoryDatabase,
    measure: str = "sed",
) -> np.ndarray:
    """Per-trajectory errors of a simplified database against the original.

    The simplified database must contain, per trajectory, a subsequence of
    the original's points (as produced by every simplifier in this package).
    """
    if len(original) != len(simplified):
        raise ValueError("databases must have the same number of trajectories")
    errors = np.empty(len(original))
    for i, (orig, simp) in enumerate(zip(original, simplified)):
        kept = _recover_indices(orig, simp)
        errors[i] = trajectory_error(orig, kept, measure)
    return errors


def _recover_indices(original: Trajectory, simplified: Trajectory) -> list[int]:
    """Map each simplified point back to its index in the original trajectory.

    Matches on the timestamp, which is unique within a trajectory because
    timestamps are strictly increasing.
    """
    positions = np.searchsorted(original.times, simplified.times)
    if (positions >= len(original.times)).any() or not np.array_equal(
        original.times[np.minimum(positions, len(original.times) - 1)],
        simplified.times,
    ):
        raise ValueError(
            "simplified trajectory is not a subsequence of the original"
        )
    return [int(i) for i in positions]
