"""Trajectory simplification error measures (paper, Section III-A).

Four per-point error notions from the literature are provided, each measuring
how badly an *anchor segment* ``p_s p_e`` approximates the original points it
replaces:

* **SED** — Synchronized Euclidean Distance: distance between the original
  point and the time-synchronized position on the anchor segment.
* **PED** — Perpendicular Euclidean Distance: distance from the original
  point to the anchor line.
* **DAD** — Direction-Aware Distance: angular difference between original
  movement directions and the anchor direction.
* **SAD** — Speed-Aware Distance: difference between original segment speeds
  and the anchor's average speed.

The error of a simplified segment is the maximum over the points (segments)
it anchors (Eq. 1); the error of a simplified trajectory is the maximum over
its segments (Eq. 2).
"""

from repro.errors.measures import (
    MEASURES,
    sed_error,
    ped_error,
    dad_error,
    sad_error,
    sed_point_errors,
    ped_point_errors,
    dad_segment_errors,
    sad_segment_errors,
    synchronized_positions,
)
from repro.errors.segment import segment_error, trajectory_error, database_errors

__all__ = [
    "MEASURES",
    "sed_error",
    "ped_error",
    "dad_error",
    "sad_error",
    "sed_point_errors",
    "ped_point_errors",
    "dad_segment_errors",
    "sad_segment_errors",
    "synchronized_positions",
    "segment_error",
    "trajectory_error",
    "database_errors",
]
