"""Range-query workload generators over several spatial distributions."""

from repro.workloads.generators import RangeQueryWorkload

__all__ = ["RangeQueryWorkload"]
