"""Range-query workload generation (paper, Sections IV-A and V-A).

RL4QDTS trains on a synthetic workload of range queries. Query *centres* are
drawn from one of four distributions the paper evaluates:

* **data** — centres sampled uniformly from the database's points, so the
  workload follows the data distribution (the default when nothing is known
  about future queries);
* **gaussian** — centres at relative position ``N(mu, sigma)`` of the
  bounding box on each spatial axis (clipped to the region);
* **zipf** — the region is divided into a grid whose cells are ranked by
  data mass; a cell is drawn with probability ``rank^-a`` and the centre
  falls uniformly inside it (skewed workloads, used for the transferability
  study);
* **real** — centres near trip origins and destinations (pickup / dropoff
  hotspots), mimicking ride-hailing queries on the Chengdu dataset.

Queries use a square spatial extent and a fixed temporal duration, matching
the paper's 2km x 2km x 7d query shape (both extents are parameters here
because the synthetic datasets are scaled down).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.queries.range_query import RangeQuery


def _default_extents(db: TrajectoryDatabase) -> tuple[float, float]:
    """Default query extents adapted to the data.

    The paper uses 2km x 2km x 7d queries on city-scale datasets whose
    trajectories span several kilometres — the box is a *fraction* of a
    trajectory's diameter, so whether a simplified trajectory still has a
    point inside a box is genuinely at stake. We reproduce that relation at
    any data scale: the spatial extent defaults to half the median trajectory
    diameter (capped by the region), and the temporal extent to a quarter of
    the database's time span.
    """
    from repro.data.stats import spatial_scale

    box = db.bounding_box
    sx, sy, st = box.spans
    spatial = 0.3 * spatial_scale(db)
    spatial = min(max(spatial, 1e-9), max(sx, sy))
    return spatial, st / 4.0


@dataclass(frozen=True, slots=True)
class RangeQueryWorkload:
    """An immutable list of range queries with provenance metadata."""

    queries: tuple[RangeQuery, ...]
    distribution: str = "unknown"
    params: dict = field(default_factory=dict, hash=False, compare=False)

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[RangeQuery]:
        return iter(self.queries)

    def __getitem__(self, i: int) -> RangeQuery:
        return self.queries[i]

    @property
    def boxes(self) -> list[BoundingBox]:
        return [q.box for q in self.queries]

    # ------------------------------------------------------------- constructors
    @classmethod
    def from_centres(
        cls,
        centres: np.ndarray,
        spatial_extent: float,
        temporal_extent: float,
        distribution: str = "explicit",
        params: dict | None = None,
    ) -> "RangeQueryWorkload":
        """Build a workload from an ``(n, 3)`` array of query centres."""
        queries = tuple(
            RangeQuery.around(x, y, t, spatial_extent, temporal_extent)
            for x, y, t in np.asarray(centres, dtype=float)
        )
        return cls(queries, distribution=distribution, params=params or {})

    @classmethod
    def from_data_distribution(
        cls,
        db: TrajectoryDatabase,
        n_queries: int,
        spatial_extent: float | None = None,
        temporal_extent: float | None = None,
        seed: int | None = None,
    ) -> "RangeQueryWorkload":
        """Query centres sampled uniformly from the database's points."""
        rng = np.random.default_rng(seed)
        se, te = cls._extents(db, spatial_extent, temporal_extent)
        points = db.all_points()
        centres = points[rng.integers(0, len(points), size=n_queries)]
        return cls.from_centres(centres, se, te, "data", {"seed": seed})

    @classmethod
    def from_gaussian(
        cls,
        db: TrajectoryDatabase,
        n_queries: int,
        mu: float = 0.5,
        sigma: float = 0.25,
        spatial_extent: float | None = None,
        temporal_extent: float | None = None,
        seed: int | None = None,
    ) -> "RangeQueryWorkload":
        """Centres at relative box position ``N(mu, sigma)`` per spatial axis."""
        rng = np.random.default_rng(seed)
        se, te = cls._extents(db, spatial_extent, temporal_extent)
        box = db.bounding_box
        rel = np.clip(rng.normal(mu, sigma, size=(n_queries, 2)), 0.0, 1.0)
        xs = box.xmin + rel[:, 0] * (box.xmax - box.xmin)
        ys = box.ymin + rel[:, 1] * (box.ymax - box.ymin)
        ts = rng.uniform(box.tmin, box.tmax, size=n_queries)
        centres = np.column_stack([xs, ys, ts])
        return cls.from_centres(
            centres, se, te, "gaussian", {"mu": mu, "sigma": sigma, "seed": seed}
        )

    @classmethod
    def from_zipf(
        cls,
        db: TrajectoryDatabase,
        n_queries: int,
        a: float = 4.0,
        grid: int = 12,
        spatial_extent: float | None = None,
        temporal_extent: float | None = None,
        seed: int | None = None,
    ) -> "RangeQueryWorkload":
        """Centres in grid cells drawn with Zipf(``a``) over data-mass rank."""
        if a <= 1.0:
            raise ValueError("the Zipf exponent must exceed 1")
        rng = np.random.default_rng(seed)
        se, te = cls._extents(db, spatial_extent, temporal_extent)
        box = db.bounding_box
        points = db.all_points()
        # Rank cells by point mass; cell rank r is drawn with p ~ r^-a.
        cx = np.clip(
            ((points[:, 0] - box.xmin) / max(box.xmax - box.xmin, 1e-9) * grid)
            .astype(int),
            0,
            grid - 1,
        )
        cy = np.clip(
            ((points[:, 1] - box.ymin) / max(box.ymax - box.ymin, 1e-9) * grid)
            .astype(int),
            0,
            grid - 1,
        )
        counts = np.bincount(cx * grid + cy, minlength=grid * grid)
        ranked_cells = np.argsort(-counts)
        ranks = np.arange(1, len(ranked_cells) + 1, dtype=float)
        probs = ranks**-a
        probs /= probs.sum()
        chosen = rng.choice(len(ranked_cells), size=n_queries, p=probs)
        cells = ranked_cells[chosen]
        cell_x = cells // grid
        cell_y = cells % grid
        wx = (box.xmax - box.xmin) / grid
        wy = (box.ymax - box.ymin) / grid
        xs = box.xmin + (cell_x + rng.random(n_queries)) * wx
        ys = box.ymin + (cell_y + rng.random(n_queries)) * wy
        ts = rng.uniform(box.tmin, box.tmax, size=n_queries)
        centres = np.column_stack([xs, ys, ts])
        return cls.from_centres(
            centres, se, te, "zipf", {"a": a, "grid": grid, "seed": seed}
        )

    @classmethod
    def from_real_distribution(
        cls,
        db: TrajectoryDatabase,
        n_queries: int,
        jitter: float = 0.02,
        spatial_extent: float | None = None,
        temporal_extent: float | None = None,
        seed: int | None = None,
    ) -> "RangeQueryWorkload":
        """Centres near trip origins / destinations (pickup-dropoff hotspots).

        ``jitter`` is the relative spatial noise added around the sampled
        endpoint, as a fraction of the larger spatial span.
        """
        rng = np.random.default_rng(seed)
        se, te = cls._extents(db, spatial_extent, temporal_extent)
        box = db.bounding_box
        endpoints = np.concatenate(
            [np.stack([t.points[0], t.points[-1]]) for t in db]
        )
        centres = endpoints[rng.integers(0, len(endpoints), size=n_queries)].copy()
        scale = jitter * max(box.xmax - box.xmin, box.ymax - box.ymin)
        centres[:, :2] += rng.normal(0.0, scale, size=(n_queries, 2))
        return cls.from_centres(
            centres, se, te, "real", {"jitter": jitter, "seed": seed}
        )

    @classmethod
    def from_uniform(
        cls,
        db: TrajectoryDatabase,
        n_queries: int,
        spatial_extent: float | None = None,
        temporal_extent: float | None = None,
        seed: int | None = None,
    ) -> "RangeQueryWorkload":
        """Centres uniform over the database's bounding box.

        The least informed workload: queries land in empty regions as often
        as in dense ones, which is the worst case for a query-aware
        simplifier trained on the data distribution.
        """
        rng = np.random.default_rng(seed)
        se, te = cls._extents(db, spatial_extent, temporal_extent)
        box = db.bounding_box
        centres = np.column_stack(
            [
                rng.uniform(box.xmin, box.xmax, size=n_queries),
                rng.uniform(box.ymin, box.ymax, size=n_queries),
                rng.uniform(box.tmin, box.tmax, size=n_queries),
            ]
        )
        return cls.from_centres(centres, se, te, "uniform", {"seed": seed})

    @classmethod
    def from_mixture(
        cls,
        db: TrajectoryDatabase,
        n_queries: int,
        components: dict[str, float],
        seed: int | None = None,
        component_params: dict[str, dict] | None = None,
    ) -> "RangeQueryWorkload":
        """A weighted mixture of named distributions.

        ``components`` maps distribution names to non-negative weights, e.g.
        ``{"data": 0.7, "uniform": 0.3}`` models a mostly-hotspot workload
        with a uniform background. Component counts are proportional to the
        weights (largest remainders rounded up) so exactly ``n_queries``
        queries are produced. ``component_params`` optionally passes extra
        keyword arguments to individual components, e.g.
        ``{"gaussian": {"mu": 0.7}}``.
        """
        component_params = component_params or {}
        if not components:
            raise ValueError("need at least one mixture component")
        weights = np.array(list(components.values()), dtype=float)
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        shares = weights / weights.sum() * n_queries
        counts = np.floor(shares).astype(int)
        remainder = n_queries - counts.sum()
        for i in np.argsort(-(shares - counts))[:remainder]:
            counts[i] += 1
        queries: list[RangeQuery] = []
        for offset, (name, count) in enumerate(zip(components, counts)):
            if count == 0:
                continue
            sub_seed = None if seed is None else seed + 101 * offset
            part = cls.generate(
                name, db, int(count), seed=sub_seed,
                **component_params.get(name, {}),
            )
            queries.extend(part.queries)
        return cls(
            tuple(queries),
            distribution="mixture",
            params={"components": dict(components), "seed": seed},
        )

    @classmethod
    def generate(
        cls,
        distribution: str,
        db: TrajectoryDatabase,
        n_queries: int,
        seed: int | None = None,
        **kwargs,
    ) -> "RangeQueryWorkload":
        """Dispatch constructor by distribution name."""
        factories = {
            "data": cls.from_data_distribution,
            "gaussian": cls.from_gaussian,
            "zipf": cls.from_zipf,
            "real": cls.from_real_distribution,
            "uniform": cls.from_uniform,
        }
        try:
            factory = factories[distribution]
        except KeyError:
            raise ValueError(
                f"unknown distribution {distribution!r}; "
                f"choose from {sorted(factories)}"
            ) from None
        return factory(db, n_queries, seed=seed, **kwargs)

    @staticmethod
    def _extents(
        db: TrajectoryDatabase,
        spatial_extent: float | None,
        temporal_extent: float | None,
    ) -> tuple[float, float]:
        default_se, default_te = _default_extents(db)
        return (
            spatial_extent if spatial_extent is not None else default_se,
            temporal_extent if temporal_extent is not None else default_te,
        )

    # ---------------------------------------------------------------- evaluate
    def evaluate(self, db: TrajectoryDatabase, grid=None) -> list[set[int]]:
        """Result sets of every query on ``db``.

        Routed through the database's shared
        :class:`~repro.queries.engine.QueryEngine` (vectorized + memoized);
        passing an explicit ``grid`` falls back to the per-query reference
        path with that index.
        """
        if grid is not None:
            from repro.queries.range_query import range_query

            return [range_query(db, q, grid) for q in self.queries]
        from repro.queries.engine import QueryEngine

        return QueryEngine.for_database(db).evaluate(self)

    # ------------------------------------------------------------ persistence
    def to_json(self) -> str:
        """Serialize to JSON (boxes, distribution name, and parameters)."""
        import json

        payload = {
            "distribution": self.distribution,
            "params": {
                k: v
                for k, v in self.params.items()
                if isinstance(v, (int, float, str, bool, type(None), dict))
            },
            "boxes": [
                [b.xmin, b.xmax, b.ymin, b.ymax, b.tmin, b.tmax]
                for b in self.boxes
            ],
        }
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RangeQueryWorkload":
        """Rebuild a workload saved with :meth:`to_json`."""
        import json

        payload = json.loads(text)
        queries = tuple(
            RangeQuery.from_bounds(*bounds) for bounds in payload["boxes"]
        )
        return cls(
            queries,
            distribution=payload.get("distribution", "unknown"),
            params=payload.get("params", {}),
        )

    def save(self, path) -> None:
        """Write the JSON serialization to ``path``."""
        from pathlib import Path

        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path) -> "RangeQueryWorkload":
        from pathlib import Path

        return cls.from_json(Path(path).read_text())

    def split(self, fraction: float, seed: int | None = None) -> tuple[
        "RangeQueryWorkload", "RangeQueryWorkload"
    ]:
        """Random split into two workloads (e.g. train / validation)."""
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.queries))
        cut = max(1, int(round(fraction * len(self.queries))))
        first = tuple(self.queries[i] for i in order[:cut])
        second = tuple(self.queries[i] for i in order[cut:])
        return (
            RangeQueryWorkload(first, self.distribution, dict(self.params)),
            RangeQueryWorkload(second, self.distribution, dict(self.params)),
        )
