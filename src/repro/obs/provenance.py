"""Benchmark run provenance: append-only BENCH_*.json run logs.

Every benchmark in ``benchmarks/`` persists its measurements to a
``BENCH_<name>.json`` file shaped as::

    {"schema": 1, "benchmark": "<name>", "runs": [run, run, ...]}

where each *run* carries the full configuration that produced it
(seed, workload shape, interpreter/platform provenance) next to the
measurements — so any number in a PR message can be traced back to the
exact invocation that produced it, and CI can gate on regressions
against the stored trajectory. This module centralises the append /
load / compare plumbing so each benchmark only builds its run dict.
"""

from __future__ import annotations

import json
import os
import platform
import sys
from datetime import datetime, timezone

__all__ = [
    "build_provenance",
    "log_run",
    "load_runs",
    "latest_run",
    "compare_runs",
    "validate_run",
]

SCHEMA_VERSION = 1


def build_provenance() -> dict:
    """Interpreter/platform facts that travel inside every run's config."""
    import numpy as np

    return {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def log_run(path: str, benchmark: str, run: dict) -> dict:
    """Append one run to ``path``, creating the file if needed.

    Returns the full document written. Refuses to append to a file whose
    ``benchmark`` name differs — run logs are per-benchmark, not shared.
    """
    doc = {"schema": SCHEMA_VERSION, "benchmark": benchmark, "runs": []}
    if os.path.exists(path):
        with open(path) as fh:
            existing = json.load(fh)
        if existing.get("benchmark") not in (None, benchmark):
            raise ValueError(
                f"{path} holds runs for benchmark "
                f"{existing.get('benchmark')!r}, not {benchmark!r}"
            )
        doc["runs"] = list(existing.get("runs", []))
    doc["runs"].append(run)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def load_runs(path: str) -> list[dict]:
    """All runs recorded in ``path`` (empty list if the file is absent)."""
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        doc = json.load(fh)
    return list(doc.get("runs", []))


def latest_run(path: str) -> dict | None:
    runs = load_runs(path)
    return runs[-1] if runs else None


def compare_runs(base: dict, new: dict, keys: list[str]) -> dict:
    """Relative deltas ``(new - base) / base`` for dotted metric keys.

    A key like ``"latency.p95_ms"`` drills into nested dicts. Missing or
    non-numeric values, and zero baselines, yield ``None`` for that key.
    """

    def dig(run: dict, dotted: str):
        node = run
        for part in dotted.split("."):
            if not isinstance(node, dict) or part not in node:
                return None
            node = node[part]
        return node if isinstance(node, (int, float)) else None

    deltas: dict[str, float | None] = {}
    for key in keys:
        b, n = dig(base, key), dig(new, key)
        deltas[key] = None if b in (None, 0) or n is None else (n - b) / b
    return deltas


def validate_run(run: dict) -> list[str]:
    """Schema problems with a load-harness run dict (empty list == valid)."""
    problems: list[str] = []
    if not isinstance(run, dict):
        return ["run is not an object"]
    config = run.get("config")
    if not isinstance(config, dict):
        problems.append("missing config object")
    else:
        for key in ("seed", "qps", "provenance", "workload_digest"):
            if key not in config:
                problems.append(f"config missing {key!r}")
        prov = config.get("provenance")
        if isinstance(prov, dict):
            for key in ("python", "numpy", "platform", "timestamp"):
                if key not in prov:
                    problems.append(f"provenance missing {key!r}")
        elif prov is not None:
            problems.append("provenance is not an object")
    latency = run.get("latency")
    if not isinstance(latency, dict):
        problems.append("missing latency object")
    else:
        for key in ("p50_ms", "p95_ms", "p99_ms", "histogram"):
            if key not in latency:
                problems.append(f"latency missing {key!r}")
    if "throughput_qps" not in run:
        problems.append("missing throughput_qps")
    if not isinstance(run.get("server_metrics"), dict):
        problems.append("missing server_metrics object")
    return problems
