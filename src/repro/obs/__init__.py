"""Observability: metrics, tracing, and benchmark-run provenance.

Three small, dependency-free layers the serving stack reports through:

* :mod:`~repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, and mergeable log-bucketed latency :class:`Histogram`\\ s
  (p50/p95/p99 derived from fixed buckets; per-shard registries shipped
  across process/wire boundaries as JSON snapshots and folded together);
* :mod:`~repro.obs.tracing` — :class:`Tracer` ring buffer of
  :class:`Span`\\ s keyed by a trace id minted in the client and carried
  on the wire, exportable as JSONL;
* :mod:`~repro.obs.provenance` — the append-only ``BENCH_*.json`` run
  log shared by the benchmarks (full config + interpreter provenance per
  run, schema validation, run-to-run comparison).
"""

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.provenance import (
    build_provenance,
    compare_runs,
    latest_run,
    load_runs,
    log_run,
    validate_run,
)
from repro.obs.tracing import Span, Tracer, mint_trace_id

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "mint_trace_id",
    "build_provenance",
    "log_run",
    "load_runs",
    "latest_run",
    "compare_runs",
    "validate_run",
]
