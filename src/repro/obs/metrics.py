"""Counters, gauges, and mergeable log-bucketed latency histograms.

The observability primitives every serving layer reports through:

* :class:`Counter` — a monotonically increasing tally (requests served,
  cache hits, bytes shipped);
* :class:`Gauge` — a point-in-time level (shm segments resident, pending
  points);
* :class:`Histogram` — a **fixed log-bucketed** distribution sketch.
  Bucket boundaries are determined entirely by the constructor parameters
  ``(min_value, growth, n_buckets)``, never by the data, which is what
  makes two histograms with the same layout *mergeable*: merging adds
  bucket counts elementwise (plus count/sum/max), so per-shard histograms
  recorded inside worker processes can travel back with gather replies
  and fold into one service-wide distribution. Quantiles (p50/p95/p99)
  are derived from the buckets — each estimate is exact to within the
  width of the bucket containing the true order statistic.
* :class:`MetricsRegistry` — a flat name -> instrument map with
  JSON-safe :meth:`~MetricsRegistry.snapshot` /
  :meth:`~MetricsRegistry.merge_snapshot`, the unit that crosses process
  and wire boundaries (the ``metrics`` op of the socket protocol ships
  exactly these snapshots).

Latency durations are measured by callers with :func:`time.perf_counter`
deltas (monotonic); the instruments only ever see non-negative floats.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default bucket layout: 1 microsecond lower bound, quarter-octave
#: (2**0.25 ~ 1.19x) growth, 112 buckets -> covers up to ~268 seconds
#: before the overflow bucket. Chosen for latencies in seconds; callers
#: recording other units should size their own layout.
DEFAULT_MIN_VALUE = 1e-6
DEFAULT_GROWTH = 2.0 ** 0.25
DEFAULT_N_BUCKETS = 112


class Counter:
    """A monotonically increasing numeric tally."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge for levels")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time level (set, not accumulated)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


class Histogram:
    """A fixed log-bucketed distribution sketch (mergeable, JSON-safe).

    Bucket ``i`` (``1 <= i <= n_buckets``) covers
    ``(min_value * growth**(i-1), min_value * growth**i]``; bucket ``0``
    is the underflow bucket (values ``<= min_value``, including zero) and
    bucket ``n_buckets + 1`` the overflow bucket. Alongside the bucket
    counts the histogram tracks ``count``, ``sum`` (accumulated in record
    order, so a single-writer histogram's ``sum`` is bit-identical to the
    plain running total it replaced), and ``max`` exactly.

    Two histograms **merge** iff their ``(min_value, growth, n_buckets)``
    layouts match: counts add elementwise, ``sum`` adds, ``max`` takes the
    larger. Bucket counts are integers, so merge is exactly associative
    and commutative on everything except the floating ``sum`` (commutative
    exactly; associative to rounding).
    """

    __slots__ = ("min_value", "growth", "n_buckets", "counts", "count", "sum", "max", "_log_growth")

    def __init__(
        self,
        min_value: float = DEFAULT_MIN_VALUE,
        growth: float = DEFAULT_GROWTH,
        n_buckets: int = DEFAULT_N_BUCKETS,
    ) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if growth <= 1.0:
            raise ValueError("growth must exceed 1")
        if n_buckets < 1:
            raise ValueError("need at least one bucket")
        self.min_value = float(min_value)
        self.growth = float(growth)
        self.n_buckets = int(n_buckets)
        self._log_growth = math.log(self.growth)
        self.counts = np.zeros(self.n_buckets + 2, dtype=np.int64)
        self.count = 0
        self.sum = 0.0
        self.max = 0.0

    # ----------------------------------------------------------------- layout
    def layout(self) -> tuple[float, float, int]:
        return (self.min_value, self.growth, self.n_buckets)

    def bucket_index(self, value: float) -> int:
        """The bucket a value falls into (0 = underflow, n+1 = overflow)."""
        if value <= self.min_value:
            return 0
        idx = 1 + int(math.floor(math.log(value / self.min_value) / self._log_growth))
        # Guard the upper edge: value == upper_edge(i) must land in bucket i,
        # but floating log can round either way on exact edges.
        while idx > 1 and value <= self.upper_edge(idx - 1):
            idx -= 1
        return min(idx, self.n_buckets + 1)

    def upper_edge(self, index: int) -> float:
        """Upper boundary of bucket ``index`` (``min_value`` for underflow)."""
        if index <= 0:
            return self.min_value
        return self.min_value * self.growth ** min(index, self.n_buckets)

    def lower_edge(self, index: int) -> float:
        if index <= 0:
            return 0.0
        return self.min_value * self.growth ** (index - 1)

    # ----------------------------------------------------------------- record
    def record(self, value: float) -> None:
        """Record one observation (non-negative; latency seconds here)."""
        value = float(value)
        if value < 0 or not math.isfinite(value):
            raise ValueError(f"histogram values must be finite and >= 0, got {value}")
        self.counts[self.bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------ stats
    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The q-quantile estimated from the buckets.

        Uses the inverted-CDF rank convention (the ``ceil(q * n)``-th order
        statistic, matching ``np.quantile(..., method="inverted_cdf")``)
        and returns the containing bucket's **upper edge** — a conservative
        estimate within one bucket width of the true order statistic. The
        overflow bucket reports the exact observed ``max``; an empty
        histogram reports 0.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cum = 0
        for idx in range(len(self.counts)):
            cum += int(self.counts[idx])
            if cum >= rank:
                if idx >= self.n_buckets + 1:
                    return self.max
                return min(self.upper_edge(idx), self.max) if idx else self.upper_edge(0)
        return self.max  # pragma: no cover - unreachable (cum ends at count)

    # ------------------------------------------------------------------ merge
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram into this one (in place; returns self)."""
        if self.layout() != other.layout():
            raise ValueError(
                f"cannot merge histograms with different layouts: "
                f"{self.layout()} vs {other.layout()}"
            )
        self.counts += other.counts
        self.count += other.count
        self.sum += other.sum
        if other.max > self.max:
            self.max = other.max
        return self

    def merged(self, other: "Histogram") -> "Histogram":
        """A new histogram equal to ``self`` merged with ``other``."""
        return self.copy().merge(other)

    def copy(self) -> "Histogram":
        out = Histogram(self.min_value, self.growth, self.n_buckets)
        out.counts = self.counts.copy()
        out.count = self.count
        out.sum = self.sum
        out.max = self.max
        return out

    # ------------------------------------------------------------------ codec
    def to_json(self) -> dict:
        """JSON-safe encoding (sparse bucket list; round-trips exactly)."""
        nonzero = np.nonzero(self.counts)[0]
        return {
            "min_value": self.min_value,
            "growth": self.growth,
            "n_buckets": self.n_buckets,
            "count": int(self.count),
            "sum": float(self.sum),
            "max": float(self.max),
            "buckets": [[int(i), int(self.counts[i])] for i in nonzero],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "Histogram":
        out = cls(
            min_value=float(obj["min_value"]),
            growth=float(obj["growth"]),
            n_buckets=int(obj["n_buckets"]),
        )
        for idx, n in obj.get("buckets", []):
            out.counts[int(idx)] = int(n)
        out.count = int(obj["count"])
        out.sum = float(obj["sum"])
        out.max = float(obj["max"])
        return out

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Histogram)
            and self.layout() == other.layout()
            and self.count == other.count
            and self.max == other.max
            and bool(np.array_equal(self.counts, other.counts))
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Histogram(count={self.count}, mean={self.mean:.6g}, "
            f"p95={self.quantile(0.95):.6g}, max={self.max:.6g})"
        )


class MetricsRegistry:
    """A flat name -> instrument map with mergeable JSON snapshots.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` get-or-create
    the named instrument, so instrumentation sites never need registration
    boilerplate. :meth:`snapshot` is the serialization unit: a plain dict
    safe for ``json.dumps`` (and for the pickled executor pipes), and
    :meth:`merge_snapshot` folds such a snapshot back in — the pattern the
    service uses to aggregate per-shard registries shipped from worker
    processes.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ instruments
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, **layout) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(**layout)
        return instrument

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> dict:
        """A JSON-safe copy of every instrument's current state."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: g.value for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: h.to_json() for k, h in sorted(self.histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` dict in: counters add, gauges take the
        latest value, histograms merge bucketwise."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, encoded in snapshot.get("histograms", {}).items():
            incoming = Histogram.from_json(encoded)
            existing = self.histograms.get(name)
            if existing is None:
                self.histograms[name] = incoming
            else:
                existing.merge(incoming)

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
