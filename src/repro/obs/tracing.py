"""Request tracing: ids minted at the edge, spans in a ring buffer.

A **trace id** is minted in the client (or accepted verbatim from the
wire frame's ``"trace"`` key) and rides the request through the server,
:class:`~repro.service.service.QueryService`, and both executors. Each
stage that does measurable work emits a :class:`Span` — a named,
wall-stamped ``(trace_id, name, duration)`` record with free-form
attributes — into the service's :class:`Tracer`, a bounded in-memory
ring buffer (old spans fall off the back; tracing never grows without
bound and never blocks serving).

Span names used by the serving stack:

========================  ====================================================
``queue``                 server: frame decoded -> worker thread picked it up
``request``               serve_cached: full dispatch+merge wall time
``cache_lookup``          serve_cached: LRU probe (attrs: ``hit``)
``plan``                  kNN scatter planning (attrs: shards kept/skipped)
``shard_exec``            serial executor: one shard's op (attrs: shard, op)
``shard_gather``          process executor: gather wait per shard
``merge``                 service: k-way/union/sum merge of shard payloads
``compaction_pass``       service: one absorbed shard compaction
========================  ====================================================

Export is JSONL (:meth:`Tracer.export_jsonl`), one span per line, stable
key order — greppable and diffable.
"""

from __future__ import annotations

import json
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["Span", "Tracer", "mint_trace_id"]


def mint_trace_id() -> str:
    """A fresh 32-hex-char trace id (uuid4)."""
    return uuid.uuid4().hex


@dataclass(frozen=True)
class Span:
    """One timed unit of work attributed to a trace."""

    trace_id: str
    name: str
    ts: float  # wall-clock start (time.time(); for correlation, not deltas)
    duration_s: float  # measured with perf_counter deltas by the emitter
    attrs: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        out = {
            "trace": self.trace_id,
            "name": self.name,
            "ts": self.ts,
            "duration_s": self.duration_s,
        }
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    @classmethod
    def from_json(cls, obj: dict) -> "Span":
        return cls(
            trace_id=str(obj["trace"]),
            name=str(obj["name"]),
            ts=float(obj["ts"]),
            duration_s=float(obj["duration_s"]),
            attrs=dict(obj.get("attrs", {})),
        )


class Tracer:
    """A bounded in-memory span sink (ring buffer, oldest dropped first)."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.capacity = int(capacity)
        self._spans: deque[Span] = deque(maxlen=self.capacity)
        self.recorded = 0  # lifetime total, including spans since evicted

    def record(
        self,
        trace_id: str | None,
        name: str,
        duration_s: float,
        *,
        ts: float | None = None,
        **attrs,
    ) -> None:
        """Append a span. A ``None`` trace id means "untraced" — dropped."""
        if trace_id is None:
            return
        self._spans.append(
            Span(
                trace_id=trace_id,
                name=name,
                ts=time.time() if ts is None else ts,
                duration_s=float(duration_s),
                attrs=attrs,
            )
        )
        self.recorded += 1

    @contextmanager
    def span(self, trace_id: str | None, name: str, **attrs) -> Iterator[dict]:
        """Time a block and record it; yields the mutable attrs dict so the
        block can annotate results (e.g. ``hit=True``) before the span lands."""
        ts = time.time()
        start = time.perf_counter()
        try:
            yield attrs
        finally:
            self.record(
                trace_id,
                name,
                time.perf_counter() - start,
                ts=ts,
                **attrs,
            )

    # ----------------------------------------------------------------- access
    def spans(self, trace_id: str | None = None) -> list[Span]:
        """Buffered spans in arrival order, optionally for one trace."""
        if trace_id is None:
            return list(self._spans)
        return [s for s in self._spans if s.trace_id == trace_id]

    def export_jsonl(self, trace_id: str | None = None) -> str:
        """The buffered spans as JSONL (one span object per line)."""
        return "\n".join(
            json.dumps(span.to_json(), sort_keys=True)
            for span in self.spans(trace_id)
        )

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)
