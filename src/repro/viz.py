"""Terminal (ASCII) visualization helpers.

No plotting stack is assumed; these render spatial density and trajectories
as character rasters — enough to eyeball a synthetic dataset, a workload's
spatial skew, or the before/after of a simplification from a shell.

Example::

    >>> from repro import synthetic_database
    >>> from repro.viz import render_density
    >>> print(render_density(synthetic_database("chengdu", 50, seed=1)))
"""

from __future__ import annotations

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory

#: Density ramp from empty to saturated.
_RAMP = " .:-=+*#%@"


def _raster(
    points_xy: np.ndarray,
    box: BoundingBox,
    width: int,
    height: int,
) -> np.ndarray:
    """Histogram an (n, 2) point set into a (height, width) count grid."""
    sx = max(box.xmax - box.xmin, 1e-9)
    sy = max(box.ymax - box.ymin, 1e-9)
    cols = np.clip(
        ((points_xy[:, 0] - box.xmin) / sx * width).astype(int), 0, width - 1
    )
    rows = np.clip(
        ((points_xy[:, 1] - box.ymin) / sy * height).astype(int), 0, height - 1
    )
    grid = np.zeros((height, width), dtype=int)
    np.add.at(grid, (rows, cols), 1)
    return grid


def _grid_to_text(grid: np.ndarray) -> str:
    peak = grid.max()
    if peak == 0:
        return "\n".join(" " * grid.shape[1] for _ in range(grid.shape[0]))
    levels = np.ceil(grid / peak * (len(_RAMP) - 1)).astype(int)
    # Row 0 is the bottom of the map; print top-down.
    lines = ["".join(_RAMP[v] for v in row) for row in levels[::-1]]
    return "\n".join(lines)


def render_density(
    db: TrajectoryDatabase,
    width: int = 64,
    height: int = 24,
) -> str:
    """An ASCII heat map of the database's spatial point density."""
    if width < 1 or height < 1:
        raise ValueError("raster dimensions must be positive")
    grid = _raster(db.all_points()[:, :2], db.bounding_box, width, height)
    return _grid_to_text(grid)


def render_trajectory(
    trajectory: Trajectory,
    width: int = 64,
    height: int = 24,
    box: BoundingBox | None = None,
) -> str:
    """An ASCII rendering of one trajectory's route.

    ``S`` marks the start, ``E`` the end, ``o`` the sampled points.
    """
    if width < 1 or height < 1:
        raise ValueError("raster dimensions must be positive")
    box = box or trajectory.bounding_box
    sx = max(box.xmax - box.xmin, 1e-9)
    sy = max(box.ymax - box.ymin, 1e-9)
    canvas = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> tuple[int, int]:
        col = int(np.clip((x - box.xmin) / sx * width, 0, width - 1))
        row = int(np.clip((y - box.ymin) / sy * height, 0, height - 1))
        return height - 1 - row, col

    for x, y in trajectory.xy:
        r, c = cell(x, y)
        canvas[r][c] = "o"
    r, c = cell(*trajectory.xy[0])
    canvas[r][c] = "S"
    r, c = cell(*trajectory.xy[-1])
    canvas[r][c] = "E"
    return "\n".join("".join(row) for row in canvas)


def render_comparison(
    original: Trajectory,
    simplified: Trajectory,
    width: int = 64,
    height: int = 24,
) -> str:
    """Original (``.``) and simplified (``#``) overlaid in one raster."""
    box = original.bounding_box
    sx = max(box.xmax - box.xmin, 1e-9)
    sy = max(box.ymax - box.ymin, 1e-9)
    canvas = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, char: str) -> None:
        col = int(np.clip((x - box.xmin) / sx * width, 0, width - 1))
        row = int(np.clip((y - box.ymin) / sy * height, 0, height - 1))
        canvas[height - 1 - row][col] = char

    for x, y in original.xy:
        put(x, y, ".")
    for x, y in simplified.xy:
        put(x, y, "#")
    return "\n".join("".join(row) for row in canvas)


def render_density_loss(
    original: TrajectoryDatabase,
    simplified: TrajectoryDatabase,
    width: int = 64,
    height: int = 24,
) -> str:
    """Where did the density go? ``-`` marks cells that lost relative mass.

    Both databases are rasterized over the original's bounding box and
    normalized to distributions; cells whose share dropped by more than half
    a ramp step render as ``-``, cells that gained render as ``+``, stable
    cells show the original density ramp. This is the picture that explains
    a QDTS result: a good simplifier loses density where no queries land.
    """
    if width < 1 or height < 1:
        raise ValueError("raster dimensions must be positive")
    box = original.bounding_box
    grid_o = _raster(original.all_points()[:, :2], box, width, height).astype(float)
    grid_s = _raster(simplified.all_points()[:, :2], box, width, height).astype(float)
    if grid_o.sum() > 0:
        grid_o /= grid_o.sum()
    if grid_s.sum() > 0:
        grid_s /= grid_s.sum()
    peak = grid_o.max()
    if peak == 0:
        return "\n".join(" " * width for _ in range(height))
    levels = np.ceil(grid_o / peak * (len(_RAMP) - 1)).astype(int)
    step = peak / (len(_RAMP) - 1)
    delta = grid_s - grid_o
    lines = []
    for r in range(height - 1, -1, -1):
        chars = []
        for c in range(width):
            if delta[r, c] < -0.5 * step:
                chars.append("-")
            elif delta[r, c] > 0.5 * step:
                chars.append("+")
            else:
                chars.append(_RAMP[levels[r, c]])
        lines.append("".join(chars))
    return "\n".join(lines)
