"""Incremental reward evaluation (paper, Eq. 10).

The reward of the cooperating agents is the decrease of
``diff(Q(D), Q(D'))`` — the query-result difference between the original and
the simplified database — over a window of ``delta`` insertions. We define
``diff`` as ``1 - mean F1`` over the training workload of range queries.

Re-running the whole workload after every window is what the paper does
conceptually; this evaluator exploits that *insertions only ever grow range
results* (a trajectory matches once any kept point falls in the box) to
maintain every query's precision/recall counters in ``O(#queries)`` per
inserted point, so training rewards are exact yet cheap.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.simplification import SimplificationState
from repro.index.grid import GridIndex
from repro.queries.engine import QueryEngine
from repro.queries.metrics import f1_score
from repro.workloads.generators import RangeQueryWorkload


class IncrementalRangeEvaluator:
    """Maintains per-query result sets of the evolving simplified database."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        workload: RangeQueryWorkload,
        grid: GridIndex | None = None,
    ) -> None:
        if len(workload) == 0:
            raise ValueError("workload must contain at least one query")
        self.db = db
        self.workload = workload
        self._boxes = workload.boxes
        # Box bounds as two (Q, 3) matrices for vectorized containment.
        self._lo = np.array([[b.xmin, b.ymin, b.tmin] for b in self._boxes])
        self._hi = np.array([[b.xmax, b.ymax, b.tmax] for b in self._boxes])
        # Ground truth and episode resets both run through the shared batch
        # engine; its memo makes repeated env construction over the same
        # database + workload (e.g. ratio sweeps) a cache hit. An explicit
        # ``grid`` is accepted for API compatibility but no longer changes
        # the result — the engine is exact whatever pruning geometry it uses.
        self._engine = QueryEngine.for_database(db)
        self._truth: list[set[int]] = self._engine.evaluate(workload)
        self._results: list[set[int]] = [set() for _ in workload]

    # ------------------------------------------------------------------- state
    def reset(self, state: SimplificationState) -> None:
        """Recompute result sets from scratch for the given kept points."""
        self._results = self._engine.evaluate_state(self.workload, state)

    def notify_insert(self, traj_id: int, point: np.ndarray) -> None:
        """Record that ``point`` of ``traj_id`` entered the simplified database."""
        point = np.asarray(point, dtype=float)
        hits = np.flatnonzero(
            (point >= self._lo).all(axis=1) & (point <= self._hi).all(axis=1)
        )
        for qi in hits:
            self._results[qi].add(traj_id)

    # ----------------------------------------------------------------- scoring
    def mean_f1(self) -> float:
        """Mean F1 of the current simplified results against the truth."""
        scores = [
            f1_score(truth, result)
            for truth, result in zip(self._truth, self._results)
        ]
        return float(np.mean(scores))

    def diff(self) -> float:
        """``diff(Q(D), Q(D'))`` as used in Eq. 10 (lower is better)."""
        return 1.0 - self.mean_f1()

    def exact_diff(self, state: SimplificationState) -> float:
        """``diff`` recomputed from scratch through the batch engine.

        An audit of the incremental counters: evaluates the whole workload on
        ``state`` directly and scores it against the truth, bypassing
        :meth:`notify_insert` bookkeeping entirely.
        """
        results = self._engine.evaluate_state(self.workload, state)
        scores = [
            f1_score(truth, result)
            for truth, result in zip(self._truth, results)
        ]
        return 1.0 - float(np.mean(scores))

    @property
    def truth(self) -> list[set[int]]:
        return [set(s) for s in self._truth]

    @property
    def results(self) -> list[set[int]]:
        return [set(s) for s in self._results]
