"""Incremental reward evaluation (paper, Eq. 10).

The reward of the cooperating agents is the decrease of
``diff(Q(D), Q(D'))`` — the query-result difference between the original and
the simplified database — over a window of ``delta`` insertions. We define
``diff`` as ``1 - mean F1`` over the training workload of range queries.

Re-running the whole workload after every window is what the paper does
conceptually; this evaluator exploits that *insertions only ever grow range
results* (a trajectory matches once any kept point falls in the box) to
maintain every query's precision/recall counters in ``O(#queries)`` per
inserted point, so training rewards are exact yet cheap. The bookkeeping
itself lives in the batch engine's incremental view
(:meth:`repro.queries.engine.QueryEngine.incremental_view`): truth, episode
resets, and live result sets all share the engine's memoized result store,
so this evaluator keeps no parallel per-query sets of its own.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.simplification import SimplificationState
from repro.index.grid import GridIndex
from repro.queries.engine import QueryEngine
from repro.queries.metrics import f1_score
from repro.workloads.generators import RangeQueryWorkload


class IncrementalRangeEvaluator:
    """Scores the evolving simplified database through the engine's view."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        workload: RangeQueryWorkload,
        grid: GridIndex | None = None,
    ) -> None:
        if len(workload) == 0:
            raise ValueError("workload must contain at least one query")
        self.db = db
        self.workload = workload
        # Ground truth and episode resets both run through the shared batch
        # engine; its memo makes repeated env construction over the same
        # database + workload (e.g. ratio sweeps) a cache hit. An explicit
        # ``grid`` is accepted for API compatibility but no longer changes
        # the result — the engine is exact whatever pruning geometry it uses.
        self._engine = QueryEngine.for_database(db)
        self._truth: list[set[int]] = self._engine.evaluate(workload)
        self._view = self._engine.incremental_view(workload)

    # ------------------------------------------------------------------- state
    def reset(self, state: SimplificationState) -> None:
        """Recompute result sets from scratch for the given kept points."""
        self._view.reset(state)

    def notify_insert(self, traj_id: int, point: np.ndarray) -> None:
        """Record that ``point`` of ``traj_id`` entered the simplified database."""
        self._view.notify_insert(traj_id, point)

    # ----------------------------------------------------------------- scoring
    def mean_f1(self) -> float:
        """Mean F1 of the current simplified results against the truth."""
        scores = [
            f1_score(truth, result)
            for truth, result in zip(self._truth, self._view.result_sets)
        ]
        return float(np.mean(scores))

    def diff(self) -> float:
        """``diff(Q(D), Q(D'))`` as used in Eq. 10 (lower is better)."""
        return 1.0 - self.mean_f1()

    def exact_diff(self, state: SimplificationState) -> float:
        """``diff`` recomputed from scratch through the batch engine.

        An audit of the incremental counters: evaluates the whole workload on
        ``state`` directly and scores it against the truth, bypassing
        :meth:`notify_insert` bookkeeping entirely.
        """
        results = self._engine.evaluate_state(self.workload, state)
        scores = [
            f1_score(truth, result)
            for truth, result in zip(self._truth, results)
        ]
        return 1.0 - float(np.mean(scores))

    @property
    def truth(self) -> list[set[int]]:
        return [set(s) for s in self._truth]

    @property
    def results(self) -> list[set[int]]:
        return self._view.results
