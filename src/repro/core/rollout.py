"""Shared episode runner for RL4QDTS (training and inference).

One episode rolls the collective simplification from the endpoints-only
database up to the budget ``W``:

1. Agent-Cube samples a start node at level ``S`` (query distribution) and
   traverses down until it stops or is forced to (leaf / level ``E``).
2. Agent-Point picks one of the ``K`` candidate points of the chosen cube
   and the point enters D'.
3. Every ``Δ`` insertions the shared reward ``R = diff_before - diff_after``
   (Eq. 10) is assigned to *all* transitions of both agents buffered in the
   window, and (in training mode) the DQNs take replay updates.

When a sampled cube has no insertable point the traversal retries a few
times and finally falls back to a uniformly random un-kept point so the
budget is always exhausted; fallback insertions produce no transitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.env import CUBE_N_ACTIONS, STOP_ACTION, QDTSEnvironment
from repro.rl.dqn import DQNAgent
from repro.rl.replay import Transition


@dataclass(slots=True)
class _PendingPoint:
    """A point transition awaiting its successor state and window reward."""

    state: np.ndarray
    action: int
    mask: np.ndarray
    next_state: np.ndarray | None = None
    next_mask: np.ndarray | None = None
    done: bool = False


@dataclass(slots=True)
class RolloutStats:
    """Bookkeeping of one episode."""

    inserted: int = 0
    fallback_inserted: int = 0
    windows: int = 0
    initial_diff: float = 0.0
    final_diff: float = 0.0
    rewards: list[float] = field(default_factory=list)

    @property
    def total_reward(self) -> float:
        return float(sum(self.rewards))


def run_episode(
    env: QDTSEnvironment,
    cube_agent: DQNAgent,
    point_agent: DQNAgent,
    budget: int,
    greedy: bool = False,
    learn: bool = False,
    use_agent_cube: bool = True,
    use_agent_point: bool = True,
    max_cube_retries: int = 5,
    reset: bool = True,
    exact_final_diff: bool = False,
) -> RolloutStats:
    """Run one full simplification episode; returns its statistics.

    ``greedy=True`` rolls out the learned policies deterministically
    (inference / Algorithm 1); ``learn=True`` additionally records
    transitions and performs DQN updates at each reward window.
    ``reset=False`` continues from the environment's current simplification
    state instead of the endpoints-only database (progressive refinement).
    ``exact_final_diff=True`` recomputes the reported ``final_diff`` from
    scratch through the batch query engine instead of trusting the
    incremental counters — an audit hook for tests and debugging.
    """
    if reset:
        env.reset()
    stats = RolloutStats(initial_diff=env.diff())
    diff_prev = stats.initial_diff
    delta = env.config.delta
    collect = learn

    pending_cube: list[tuple] = []  # (s, a, mask, s', next_mask, done)
    pending_point: list[_PendingPoint] = []
    open_point: _PendingPoint | None = None
    window_inserts = 0

    stop_only_mask = np.zeros(CUBE_N_ACTIONS, dtype=bool)
    stop_only_mask[STOP_ACTION] = True

    while env.state.total_kept < budget:
        chosen = _choose_cube_and_candidates(
            env, cube_agent, greedy, use_agent_cube, max_cube_retries,
            stop_only_mask,
        )
        if chosen is None:
            fallback = env.random_unkept_point()
            if fallback is None:
                break  # every point already kept; budget >= N
            env.insert(*fallback)
            stats.inserted += 1
            stats.fallback_inserted += 1
        else:
            cube_transitions, point_state, candidates, point_mask = chosen
            if collect:
                pending_cube.extend(cube_transitions)
            if use_agent_point:
                action = point_agent.act(point_state, point_mask, greedy=greedy)
            else:
                action = 0  # ablation: always insert the max-v_s candidate
            if collect:
                if open_point is not None:
                    open_point.next_state = point_state
                    open_point.next_mask = point_mask
                open_point = _PendingPoint(point_state, action, point_mask)
                pending_point.append(open_point)
            env.insert(*candidates[action])
            stats.inserted += 1
        window_inserts += 1

        if window_inserts >= delta or env.state.total_kept >= budget:
            diff_now = env.diff()
            reward = diff_prev - diff_now
            stats.rewards.append(reward)
            stats.windows += 1
            if collect:
                _flush_window(
                    cube_agent,
                    point_agent,
                    pending_cube,
                    pending_point,
                    open_point,
                    reward,
                    env.config.k_candidates,
                )
                pending_cube = []
                pending_point = []
                open_point = None
                updates = max(1, delta // max(env.config.learn_every, 1))
                for _ in range(updates):
                    cube_agent.learn()
                    point_agent.learn()
                # ε anneals once per reward window so exploration fades over
                # the course of training, not just across episodes.
                cube_agent.decay_epsilon()
                point_agent.decay_epsilon()
            diff_prev = diff_now
            window_inserts = 0

    stats.final_diff = env.exact_diff() if exact_final_diff else env.diff()
    return stats


def _choose_cube_and_candidates(
    env: QDTSEnvironment,
    cube_agent: DQNAgent,
    greedy: bool,
    use_agent_cube: bool,
    max_retries: int,
    stop_only_mask: np.ndarray,
):
    """Sample/traverse to a cube that has candidates; None if all retries fail.

    Returns ``(cube_transitions, point_state, candidates, point_mask)``.
    """
    for _ in range(max_retries):
        node = env.start_node()
        transitions: list[tuple] = []
        if use_agent_cube:
            while True:
                state, mask = env.cube_state(node)
                if not mask[:STOP_ACTION].any():
                    # Leaf or level E: forced stop (Algorithm 2, line 6).
                    transitions.append(
                        (state, STOP_ACTION, mask, state, stop_only_mask, True)
                    )
                    break
                action = cube_agent.act(state, mask, greedy=greedy)
                if action == STOP_ACTION:
                    transitions.append(
                        (state, STOP_ACTION, mask, state, stop_only_mask, True)
                    )
                    break
                child = env.descend(node, action)
                child_state, child_mask = env.cube_state(child)
                transitions.append(
                    (state, action, mask, child_state, child_mask, False)
                )
                node = child
        point_state, candidates, point_mask = env.point_state(node)
        # A cube whose candidates all have ~0 feature values is already
        # represented exactly (e.g. collinear or stationary runs); spending
        # budget there cannot change any query result, so retry elsewhere.
        if candidates and point_state.max() > 1e-9:
            return transitions, point_state, candidates, point_mask
    return None


def _flush_window(
    cube_agent: DQNAgent,
    point_agent: DQNAgent,
    pending_cube: list[tuple],
    pending_point: list[_PendingPoint],
    open_point: _PendingPoint | None,
    reward: float,
    k: int,
) -> None:
    """Assign the shared window reward and push everything into replay."""
    for state, action, mask, next_state, next_mask, done in pending_cube:
        cube_agent.remember(
            Transition(state, action, reward, next_state, next_mask, done, mask)
        )
    if open_point is not None:
        # The last point transition of the window is terminal.
        open_point.done = True
        open_point.next_state = open_point.state
        open_point.next_mask = np.ones(k, dtype=bool)
    for record in pending_point:
        if record.next_state is None:
            record.next_state = record.state
            record.next_mask = np.ones(k, dtype=bool)
            record.done = True
        point_agent.remember(
            Transition(
                record.state,
                record.action,
                reward,
                record.next_state,
                record.next_mask,
                record.done,
                record.mask,
            )
        )
