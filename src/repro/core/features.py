"""Agent-Point state features (paper, Eqs. 6-8).

For a candidate point ``p`` (not yet in the simplified database) whose
current anchor segment is ``p_s p_e`` (the simplified segment approximating
it), two values are computed:

* ``v_s(p)`` — the "spatial" value: distance between ``p`` and its
  *synchronized* point on the anchor segment (the position the simplified
  trajectory reports at ``p``'s timestamp) — i.e. ``p``'s current SED;
* ``v_t(p)`` — the "temporal" value: the absolute difference between ``p``'s
  timestamp and the timestamp of the *spatially closest* point on the anchor
  segment (time is interpolated linearly along the segment).

The state of Agent-Point at a cube is the top-``K`` list (by ``v_s``) of the
per-trajectory maxima of these pairs (Eq. 8), flattened into a ``2K`` vector
and zero-padded when the cube holds fewer than ``K`` trajectories with
candidates.

The batch entry point :func:`cube_point_state` is the inner loop of both
training and inference, so the value computation is vectorized per
trajectory.
"""

from __future__ import annotations

import numpy as np

from repro.data.simplification import SimplificationState

_EPS = 1e-12


def point_values(points: np.ndarray, idx: int, s: int, e: int) -> tuple[float, float]:
    """``(v_s, v_t)`` of original point ``idx`` against anchor ``p_s p_e``."""
    v_s, v_t = point_values_batch(
        points, np.array([idx]), np.array([s]), np.array([e])
    )
    return float(v_s[0]), float(v_t[0])


def point_values_batch(
    points: np.ndarray,
    idxs: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized ``(v_s, v_t)`` for many points of one trajectory.

    ``idxs``, ``starts`` and ``ends`` are aligned arrays of candidate point
    indices and their anchor endpoints.
    """
    p = points[idxs]
    a = points[starts]
    b = points[ends]
    dt = b[:, 2] - a[:, 2]
    safe_dt = np.where(np.abs(dt) <= _EPS, 1.0, dt)
    frac = np.where(np.abs(dt) <= _EPS, 0.0, (p[:, 2] - a[:, 2]) / safe_dt)
    sync = a[:, :2] + frac[:, None] * (b[:, :2] - a[:, :2])
    v_s = np.linalg.norm(p[:, :2] - sync, axis=1)

    ab = b[:, :2] - a[:, :2]
    sq_len = np.einsum("ij,ij->i", ab, ab)
    safe_len = np.where(sq_len <= _EPS, 1.0, sq_len)
    u = np.einsum("ij,ij->i", p[:, :2] - a[:, :2], ab) / safe_len
    u = np.where(sq_len <= _EPS, 0.0, np.clip(u, 0.0, 1.0))
    nearest_time = a[:, 2] + u * dt
    v_t = np.abs(p[:, 2] - nearest_time)
    return v_s, v_t


def _trajectory_best(
    state: SimplificationState,
    tid: int,
    idxs: np.ndarray,
    rank_by: str = "vs",
) -> tuple[float, float, int] | None:
    """The max-value candidate of one trajectory within a cube (Eq. 7).

    ``rank_by`` selects the ranking value: ``"vs"`` (paper default) or
    ``"vt"`` (the alternative the paper evaluated and found worse).
    """
    n = len(state.database[tid])
    interior = idxs[(idxs > 0) & (idxs < n - 1)]
    if len(interior) == 0:
        return None
    kept = np.asarray(state.kept[tid], dtype=int)
    pos = np.searchsorted(kept, interior)
    in_range = pos < len(kept)
    is_kept = np.zeros(len(interior), dtype=bool)
    is_kept[in_range] = kept[pos[in_range]] == interior[in_range]
    candidates = interior[~is_kept]
    if len(candidates) == 0:
        return None
    pos = np.searchsorted(kept, candidates)  # strictly inside (0, len(kept))
    starts = kept[pos - 1]
    ends = kept[pos]
    v_s, v_t = point_values_batch(
        state.database[tid].points, candidates, starts, ends
    )
    ranking = v_s if rank_by == "vs" else v_t
    best = int(np.argmax(ranking))
    return float(v_s[best]), float(v_t[best]), int(candidates[best])


def cube_point_state(
    state: SimplificationState,
    entries: dict[int, np.ndarray] | list[tuple[int, int]],
    k: int,
    rank_by: str = "vs",
) -> tuple[np.ndarray, list[tuple[int, int]], np.ndarray]:
    """Agent-Point's state for the points of one cube.

    Parameters
    ----------
    state:
        Current collective simplification state (kept points are excluded
        from candidacy, as the paper specifies).
    entries:
        The cube's points: either a mapping ``traj_id -> sorted index array``
        or a flat list of ``(traj_id, point_index)`` pairs.
    k:
        The hyper-parameter ``K`` bounding the state / action space.

    Returns
    -------
    ``(state_vector, candidates, mask)`` where ``state_vector`` is the
    flattened ``2K`` feature vector, ``candidates[i]`` is the
    ``(traj_id, point_index)`` inserted by action ``i``, and ``mask`` flags
    which of the ``K`` actions are available. ``candidates`` is empty when
    the cube holds no insertable point.
    """
    if k < 1:
        raise ValueError("K must be >= 1")
    if not isinstance(entries, dict):
        grouped: dict[int, list[int]] = {}
        for tid, idx in entries:
            grouped.setdefault(tid, []).append(idx)
        entries = {
            tid: np.asarray(sorted(idxs), dtype=int)
            for tid, idxs in grouped.items()
        }
    best_rows: list[tuple[float, float, int, int]] = []
    for tid, idxs in entries.items():
        best = _trajectory_best(state, tid, idxs, rank_by)
        if best is not None:
            v_s, v_t, idx = best
            best_rows.append((v_s, v_t, tid, idx))
    # Top-K trajectories by the ranking value, Eq. 8 (ties broken by id).
    rank_index = 0 if rank_by == "vs" else 1
    best_rows.sort(key=lambda r: (-r[rank_index], r[2]))
    ranked = best_rows[:k]
    vector = np.zeros(2 * k)
    candidates: list[tuple[int, int]] = []
    for row, (v_s, v_t, tid, idx) in enumerate(ranked):
        vector[2 * row] = v_s
        vector[2 * row + 1] = v_t
        candidates.append((tid, idx))
    mask = np.zeros(k, dtype=bool)
    mask[: len(candidates)] = True
    return vector, candidates, mask
