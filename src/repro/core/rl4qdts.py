"""The RL4QDTS algorithm (paper, Algorithms 1-3).

:class:`RL4QDTS` bundles the two trained agents and exposes:

* :meth:`RL4QDTS.train` — the full training procedure of Section V-A:
  sample training sub-databases, roll ε-greedy episodes with shared
  Δ-window rewards, keep the best-performing parameters;
* :meth:`RL4QDTS.simplify` — Algorithm 1: greedy rollout of the learned
  policies until the budget is exhausted;
* ablation switches ``use_agent_cube`` / ``use_agent_point`` reproducing
  Table II (a disabled Agent-Cube degenerates to sampling a cube at the
  start level by the query distribution; a disabled Agent-Point always
  inserts the maximum-``v_s`` candidate);
* :meth:`save` / :meth:`load` for trained policies.
"""

from __future__ import annotations

import json
from dataclasses import asdict, field, dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.core.config import RL4QDTSConfig
from repro.core.env import CUBE_N_ACTIONS, CUBE_STATE_DIM, QDTSEnvironment
from repro.core.rollout import RolloutStats, run_episode
from repro.data.database import TrajectoryDatabase
from repro.rl.dqn import DQNAgent, DQNConfig
from repro.rl.policy_gradient import REINFORCEAgent
from repro.workloads.generators import RangeQueryWorkload

WorkloadFactory = Callable[[TrajectoryDatabase, int], RangeQueryWorkload]


def _default_workload_factory(distribution: str, n_queries: int) -> WorkloadFactory:
    def factory(db: TrajectoryDatabase, seed: int) -> RangeQueryWorkload:
        return RangeQueryWorkload.generate(distribution, db, n_queries, seed=seed)

    return factory


@dataclass(slots=True)
class TrainingHistory:
    """Per-episode training diagnostics."""

    episode_diffs: list[float] = field(default_factory=list)
    episode_rewards: list[float] = field(default_factory=list)
    best_diff: float = float("inf")


class RL4QDTS:
    """Query-accuracy-driven collective trajectory database simplifier."""

    def __init__(
        self,
        config: RL4QDTSConfig | None = None,
        use_agent_cube: bool = True,
        use_agent_point: bool = True,
    ) -> None:
        self.config = config or RL4QDTSConfig()
        self.use_agent_cube = use_agent_cube
        self.use_agent_point = use_agent_point
        seed = self.config.seed
        agent_cls = DQNAgent if self.config.learner == "dqn" else REINFORCEAgent
        self.cube_agent = agent_cls(
            CUBE_STATE_DIM, CUBE_N_ACTIONS, self.config.dqn, seed=seed
        )
        self.point_agent = agent_cls(
            2 * self.config.k_candidates,
            self.config.k_candidates,
            self.config.dqn,
            seed=seed + 1,
        )
        self.history = TrainingHistory()
        self._distribution: str | None = "data"
        self._workload_factory: WorkloadFactory = _default_workload_factory(
            "data", self.config.n_training_queries
        )

    # ---------------------------------------------------------------- training
    @classmethod
    def train(
        cls,
        db: TrajectoryDatabase,
        workload: RangeQueryWorkload | None = None,
        config: RL4QDTSConfig | None = None,
        distribution: str = "data",
        use_agent_cube: bool = True,
        use_agent_point: bool = True,
        workload_factory: WorkloadFactory | None = None,
    ) -> "RL4QDTS":
        """Train the two agents on sub-databases sampled from ``db``.

        Parameters
        ----------
        db:
            The training corpus; ``config.n_train_databases`` sub-databases
            of ``config.train_db_size`` trajectories are sampled from it.
        workload:
            Optional explicit training workload. When given, its queries are
            reused verbatim for every training database (and at test time);
            otherwise a fresh workload is generated per training database
            from ``distribution``.
        config:
            Hyper-parameters; defaults to :class:`RL4QDTSConfig`.
        distribution:
            Workload distribution name used when no workload is given
            (``"data"``, ``"gaussian"``, ``"zipf"``, ``"real"``).
        use_agent_cube / use_agent_point:
            Ablation switches (Table II).
        workload_factory:
            Full custom control over training workload generation:
            ``factory(sub_db, seed) -> RangeQueryWorkload``.
        """
        model = cls(config, use_agent_cube, use_agent_point)
        cfg = model.config
        if workload_factory is not None:
            model._workload_factory = workload_factory
            model._distribution = None
        elif workload is not None:
            model._workload_factory = lambda _db, _seed: workload
            model._distribution = None
        else:
            model._workload_factory = _default_workload_factory(
                distribution, cfg.n_training_queries
            )
            model._distribution = distribution

        rng = np.random.default_rng(cfg.seed)
        best_params: tuple[dict, dict] | None = None
        for db_round in range(cfg.n_train_databases):
            sub_db = db.sample(cfg.train_db_size, rng)
            train_workload = model._workload_factory(
                sub_db, cfg.seed + 1000 + db_round
            )
            env = QDTSEnvironment(
                sub_db,
                train_workload,
                cfg,
                np.random.default_rng(cfg.seed + 2000 + db_round),
            )
            budget = sub_db.budget_for_ratio(cfg.train_budget_ratio)
            for _ in range(cfg.episodes):
                stats = run_episode(
                    env,
                    model.cube_agent,
                    model.point_agent,
                    budget,
                    greedy=False,
                    learn=True,
                    use_agent_cube=use_agent_cube,
                    use_agent_point=use_agent_point,
                )
                model.history.episode_diffs.append(stats.final_diff)
                model.history.episode_rewards.append(stats.total_reward)
                # "The best model is chosen during training" (Section V-A).
                if stats.final_diff < model.history.best_diff:
                    model.history.best_diff = stats.final_diff
                    best_params = (
                        model.cube_agent.get_parameters(),
                        model.point_agent.get_parameters(),
                    )
        if best_params is not None:
            model.cube_agent.set_parameters(best_params[0])
            model.point_agent.set_parameters(best_params[1])
        return model

    # --------------------------------------------------------------- inference
    def simplify(
        self,
        db: TrajectoryDatabase,
        budget_ratio: float | None = None,
        budget: int | None = None,
        workload: RangeQueryWorkload | None = None,
        seed: int | None = None,
        return_stats: bool = False,
    ) -> TrajectoryDatabase | tuple[TrajectoryDatabase, RolloutStats]:
        """Algorithm 1: produce the simplified database D'.

        Parameters
        ----------
        db:
            Database to simplify.
        budget_ratio / budget:
            Exactly one must be given: the compression ratio ``r`` or the
            absolute point budget ``W``.
        workload:
            Range queries used for the octree's query annotations and the
            start-level sampling. Defaults to a data-distribution workload
            generated from ``db`` (no knowledge of test queries; Section
            IV-A).
        seed:
            Seed for start-level sampling; defaults to the config seed.
        return_stats:
            Also return the rollout statistics.
        """
        if (budget_ratio is None) == (budget is None):
            raise ValueError("give exactly one of budget_ratio / budget")
        if budget is None:
            budget = db.budget_for_ratio(budget_ratio)
        if budget < 2 * len(db):
            raise ValueError(
                f"budget {budget} cannot cover 2 endpoints per trajectory"
            )
        seed = self.config.seed if seed is None else seed
        if workload is None:
            if self._distribution is not None:
                # A larger inference sample approximates the (known) query
                # distribution better than re-using the training sample size.
                workload = RangeQueryWorkload.generate(
                    self._distribution,
                    db,
                    self.config.n_inference_queries,
                    seed=seed + 5000,
                )
            else:
                workload = self._workload_factory(db, seed + 5000)
        env = QDTSEnvironment(
            db, workload, self.config, np.random.default_rng(seed)
        )
        stats = run_episode(
            env,
            self.cube_agent,
            self.point_agent,
            budget,
            greedy=True,
            learn=False,
            use_agent_cube=self.use_agent_cube,
            use_agent_point=self.use_agent_point,
        )
        simplified = env.state.materialize()
        if return_stats:
            return simplified, stats
        return simplified

    def refine(
        self,
        db: TrajectoryDatabase,
        simplified: TrajectoryDatabase,
        budget_ratio: float | None = None,
        budget: int | None = None,
        workload: RangeQueryWorkload | None = None,
        seed: int | None = None,
    ) -> TrajectoryDatabase:
        """Progressively refine an existing simplification to a larger budget.

        Restores ``simplified`` (which must consist of point subsequences of
        ``db``, as produced by any simplifier in this package) into the
        collective state and continues inserting points with the learned
        policies until the new, larger budget is reached. Storage budgets
        can thus be *upgraded* without starting over — the existing points
        are all retained.

        Parameters mirror :meth:`simplify`; the budget must be at least the
        simplified database's current size.
        """
        from repro.errors.segment import _recover_indices

        if (budget_ratio is None) == (budget is None):
            raise ValueError("give exactly one of budget_ratio / budget")
        if budget is None:
            budget = db.budget_for_ratio(budget_ratio)
        if len(simplified) != len(db):
            raise ValueError("databases must align trajectory-by-trajectory")
        if budget < simplified.total_points:
            raise ValueError(
                f"budget {budget} is below the current size "
                f"{simplified.total_points}; refinement only adds points"
            )
        kept = [
            _recover_indices(db[t.traj_id], t) for t in simplified
        ]
        seed = self.config.seed if seed is None else seed
        if workload is None:
            if self._distribution is not None:
                workload = RangeQueryWorkload.generate(
                    self._distribution,
                    db,
                    self.config.n_inference_queries,
                    seed=seed + 5000,
                )
            else:
                workload = self._workload_factory(db, seed + 5000)
        env = QDTSEnvironment(
            db, workload, self.config, np.random.default_rng(seed)
        )
        env.load_kept(kept)
        run_episode(
            env,
            self.cube_agent,
            self.point_agent,
            budget,
            greedy=True,
            learn=False,
            use_agent_cube=self.use_agent_cube,
            use_agent_point=self.use_agent_point,
            reset=False,
        )
        return env.state.materialize()

    # ------------------------------------------------------------- persistence
    def save(self, path: str | Path) -> None:
        """Save config, ablation flags, and both agents' parameters (.npz)."""
        payload: dict[str, np.ndarray] = {}
        for prefix, agent in (("cube", self.cube_agent), ("point", self.point_agent)):
            for name, value in agent.get_parameters().items():
                payload[f"{prefix}_{name}"] = value
        config_dict = asdict(self.config)
        config_dict["dqn"] = asdict(self.config.dqn)
        meta = {
            "config": config_dict,
            "use_agent_cube": self.use_agent_cube,
            "use_agent_point": self.use_agent_point,
        }
        payload["meta_json"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **payload)

    @classmethod
    def load(cls, path: str | Path) -> "RL4QDTS":
        """Load a model saved by :meth:`save`."""
        with np.load(path) as data:
            meta = json.loads(bytes(data["meta_json"]).decode())
            dqn = DQNConfig(**meta["config"].pop("dqn"))
            config = RL4QDTSConfig(dqn=dqn, **meta["config"])
            model = cls(
                config,
                use_agent_cube=meta["use_agent_cube"],
                use_agent_point=meta["use_agent_point"],
            )
            for prefix, agent in (
                ("cube", model.cube_agent),
                ("point", model.point_agent),
            ):
                params = {
                    key[len(prefix) + 1 :]: data[key]
                    for key in data.files
                    if key.startswith(prefix + "_")
                }
                agent.set_parameters(params)
        return model
