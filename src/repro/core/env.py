"""The QDTS simplification environment.

Binds together a trajectory database, its octree, a training workload of
range queries, the collective simplification state, and the incremental
reward evaluator. Both training (ε-greedy + learning) and inference (greedy
rollout of the learned policies, Algorithm 1) drive this environment; the
environment itself is policy-agnostic.

The environment exposes the primitives the two MDPs need:

* :meth:`start_node` — sample Agent-Cube's start node at level ``S``
  following the query distribution (the paper's start-level technique);
* :meth:`cube_state` — Eq. 4 state + valid-action mask at a node
  (stop is action index 8; a leaf or level-``E`` node forces stop);
* :meth:`descend` — move to a child node;
* :meth:`point_state` — Eq. 8 state + candidates + mask inside a cube;
* :meth:`insert` — commit a point into D' and update reward bookkeeping;
* :meth:`diff` — current ``diff(Q(D), Q(D'))`` (Eq. 10 ingredient).

Agent-Cube states depend only on the (static) data and query distributions,
so they are cached per node.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import RL4QDTSConfig
from repro.core.features import cube_point_state
from repro.core.reward import IncrementalRangeEvaluator
from repro.data.database import TrajectoryDatabase
from repro.data.simplification import SimplificationState
from repro.index import TREE_INDEXES
from repro.index.octree import OctreeNode
from repro.workloads.generators import RangeQueryWorkload

#: Agent-Cube's state dimensionality: 8 children x (data, query) fractions.
CUBE_STATE_DIM = 16
#: Agent-Cube's action space: descend into child 0..7, or stop (index 8).
CUBE_N_ACTIONS = 9
STOP_ACTION = 8


class QDTSEnvironment:
    """One database + workload + octree, ready for collective simplification."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        workload: RangeQueryWorkload,
        config: RL4QDTSConfig,
        rng: np.random.Generator,
    ) -> None:
        self.db = db
        self.workload = workload
        self.config = config
        self.rng = rng
        self.octree = TREE_INDEXES[config.index](
            db, max_depth=config.end_level, leaf_capacity=config.leaf_capacity
        )
        self.octree.annotate_queries(workload.boxes)
        self.evaluator = IncrementalRangeEvaluator(db, workload)
        self.state = SimplificationState(db)
        self._cube_state_cache: dict[int, np.ndarray] = {}
        # Octree contents are static, so per-node point listings are memoized
        # the first time a cube is chosen (grouped by trajectory for the
        # feature computation).
        self._entries_cache: dict[int, dict[int, np.ndarray]] = {}
        self._fallback_order: list[tuple[int, int]] | None = None
        self._fallback_pos = 0
        self.reset()

    # ------------------------------------------------------------------- reset
    def reset(self) -> None:
        """Back to the most simplified database (endpoints only)."""
        self.state = SimplificationState(self.db)
        self.evaluator.reset(self.state)
        self._fallback_order = None
        self._fallback_pos = 0

    # -------------------------------------------------------------- agent-cube
    def start_node(self) -> OctreeNode:
        """Sample the traversal start at level ``S`` by query distribution."""
        return self.octree.sample_node_at_level(
            self.config.start_level, self.rng, by="queries"
        )

    def cube_state(self, node: OctreeNode) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 4 state vector and the valid-action mask at ``node``."""
        key = id(node)
        state = self._cube_state_cache.get(key)
        if state is None:
            state = self.octree.child_fractions(node)
            self._cube_state_cache[key] = state
        mask = np.zeros(CUBE_N_ACTIONS, dtype=bool)
        mask[STOP_ACTION] = True
        if not node.is_leaf and node.level < self.config.end_level:
            for k in node.nonempty_children():
                mask[k] = True
        return state, mask

    def descend(self, node: OctreeNode, action: int) -> OctreeNode:
        """Follow child ``action`` (0..7); raises on invalid moves."""
        child = node.child(action)
        if child is None:
            raise ValueError(f"child {action} of node at level {node.level} is empty")
        return child

    # ------------------------------------------------------------- agent-point
    def point_state(
        self, node: OctreeNode
    ) -> tuple[np.ndarray, list[tuple[int, int]], np.ndarray]:
        """Eq. 8 state, candidate list, and action mask for ``node``'s cube."""
        key = id(node)
        grouped = self._entries_cache.get(key)
        if grouped is None:
            grouped = {}
            for tid, idx in self.octree.collect_points(node):
                grouped.setdefault(tid, []).append(idx)
            grouped = {
                tid: np.asarray(sorted(idxs), dtype=int)
                for tid, idxs in grouped.items()
            }
            self._entries_cache[key] = grouped
        return cube_point_state(
            self.state,
            grouped,
            self.config.k_candidates,
            rank_by=self.config.point_feature,
        )

    def insert(self, traj_id: int, index: int) -> None:
        """Commit one point into the simplified database."""
        self.state.insert(traj_id, index)
        self.evaluator.notify_insert(traj_id, self.db[traj_id].points[index])

    def load_kept(self, kept_per_trajectory: list[list[int]]) -> None:
        """Reset, then restore an existing simplification (for refinement).

        ``kept_per_trajectory[tid]`` lists the kept indices of trajectory
        ``tid``; endpoints are implied and may be included or omitted.
        """
        if len(kept_per_trajectory) != len(self.db):
            raise ValueError("kept lists must cover every trajectory")
        self.reset()
        for tid, kept in enumerate(kept_per_trajectory):
            last = len(self.db[tid]) - 1
            for idx in kept:
                if 0 < idx < last:
                    self.insert(tid, int(idx))

    # --------------------------------------------------------------- fallbacks
    def random_unkept_point(self) -> tuple[int, int] | None:
        """A uniformly random not-yet-kept interior point, or None if exhausted.

        Used when the sampled cube holds no candidates (e.g. everything in it
        is already kept); amortized O(N) over a whole episode.
        """
        if self._fallback_order is None:
            interior = [
                (t.traj_id, i)
                for t in self.db
                for i in range(1, len(t) - 1)
            ]
            self.rng.shuffle(interior)
            self._fallback_order = interior
            self._fallback_pos = 0
        order = self._fallback_order
        while self._fallback_pos < len(order):
            tid, idx = order[self._fallback_pos]
            self._fallback_pos += 1
            if not self.state.is_kept(tid, idx):
                return tid, idx
        return None

    # ----------------------------------------------------------------- scoring
    def diff(self) -> float:
        """Current ``diff(Q(D), Q(D'))`` — 1 minus the workload's mean F1."""
        return self.evaluator.diff()

    def exact_diff(self) -> float:
        """``diff`` recomputed from scratch via the batch query engine."""
        return self.evaluator.exact_diff(self.state)

    @property
    def budget_used(self) -> int:
        return self.state.total_kept

    def remaining_budget(self, budget: int) -> int:
        return max(0, budget - self.state.total_kept)
