"""The paper's primary contribution: the RL4QDTS algorithm."""

from repro.core.config import RL4QDTSConfig
from repro.core.env import (
    CUBE_N_ACTIONS,
    CUBE_STATE_DIM,
    STOP_ACTION,
    QDTSEnvironment,
)
from repro.core.features import cube_point_state, point_values
from repro.core.reward import IncrementalRangeEvaluator
from repro.core.rollout import RolloutStats, run_episode
from repro.core.rl4qdts import RL4QDTS, TrainingHistory
from repro.core.tuning import TrialResult, grid_search, evaluate_model

__all__ = [
    "RL4QDTSConfig",
    "QDTSEnvironment",
    "CUBE_STATE_DIM",
    "CUBE_N_ACTIONS",
    "STOP_ACTION",
    "cube_point_state",
    "point_values",
    "IncrementalRangeEvaluator",
    "RolloutStats",
    "run_episode",
    "RL4QDTS",
    "TrainingHistory",
    "TrialResult",
    "grid_search",
    "evaluate_model",
]
