"""Configuration for RL4QDTS (paper, Sections IV-D and V-A).

The paper's hyper-parameters target databases of millions of points
(``S = 9``, ``E = 12``, 1M transitions). This reproduction runs the same
algorithm at laptop scale, so the defaults are correspondingly smaller; every
knob is exposed and the parameter-study benchmark sweeps the important ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rl.dqn import DQNConfig


@dataclass(frozen=True, slots=True)
class RL4QDTSConfig:
    """All hyper-parameters of the RL4QDTS algorithm.

    Attributes
    ----------
    start_level:
        ``S``: Agent-Cube starts its traversal at a node sampled (following
        the query distribution) at this octree level.
    end_level:
        ``E``: maximum traversal depth; reaching it forces a stop. Also the
        octree's maximum build depth.
    k_candidates:
        ``K``: size of Agent-Point's state / action space (paper default 2).
    point_feature:
        Which value ranks Agent-Point's candidates: ``"vs"`` (spatial
        synchronized deviation; the paper's choice) or ``"vt"`` (temporal
        deviation; the design alternative the paper reports as worse).
    delta:
        ``Δ``: number of insertions between reward evaluations (paper: 50).
    n_training_queries:
        Number of range queries in the training workload (paper: 100).
    n_inference_queries:
        Number of range queries sampled at simplification time when no
        explicit workload is passed. A larger sample approximates the query
        *distribution* more faithfully (it is the distribution, not the
        sample, that is assumed known; Section IV-A), improving transfer to
        unseen test queries.
    episodes:
        Training episodes per training database (paper: 5).
    n_train_databases:
        Number of randomly sampled training databases (paper: 12).
    train_db_size:
        Trajectories per training database (paper: 500 for Geolife).
    train_budget_ratio:
        Compression ratio used to roll out training episodes.
    leaf_capacity:
        Octree leaf split threshold.
    index:
        Which cube tree partitions the database: ``"octree"`` (midpoint
        splits; the paper's choice) or ``"kdtree"`` (median splits; the
        alternative the paper leaves as future work).
    learner:
        RL algorithm for both agents: ``"dqn"`` (the paper's choice; set
        ``dqn.double_dqn`` for Double-DQN targets) or ``"reinforce"``
        (the policy-gradient alternative the paper mentions).
    learn_every:
        Environment steps between DQN mini-batch updates.
    dqn:
        DQN hyper-parameters (network width, lr, ε schedule, replay, ...).
    seed:
        Master seed; all per-component generators derive from it.
    """

    start_level: int = 4
    end_level: int = 7
    k_candidates: int = 2
    point_feature: str = "vs"
    delta: int = 25
    n_training_queries: int = 50
    n_inference_queries: int = 200
    episodes: int = 3
    n_train_databases: int = 2
    train_db_size: int = 40
    train_budget_ratio: float = 0.02
    leaf_capacity: int = 16
    index: str = "octree"
    learner: str = "dqn"
    learn_every: int = 4
    dqn: DQNConfig = field(default_factory=DQNConfig)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.start_level < 1:
            raise ValueError("start_level must be >= 1")
        if self.end_level < self.start_level:
            raise ValueError("end_level must be >= start_level")
        if self.k_candidates < 1:
            raise ValueError("k_candidates must be >= 1")
        if self.point_feature not in ("vs", "vt"):
            raise ValueError("point_feature must be 'vs' or 'vt'")
        if self.index not in ("octree", "kdtree"):
            raise ValueError("index must be 'octree' or 'kdtree'")
        if self.learner not in ("dqn", "reinforce"):
            raise ValueError("learner must be 'dqn' or 'reinforce'")
        if self.delta < 1:
            raise ValueError("delta must be >= 1")
        if not 0.0 < self.train_budget_ratio <= 1.0:
            raise ValueError("train_budget_ratio must be in (0, 1]")
