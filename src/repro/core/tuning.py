"""Hyper-parameter sweeps for RL4QDTS.

The paper tunes ``S``, ``E``, ``K``, and ``Δ`` empirically (Section V-B,
parameter study). This module packages that workflow: declare a grid over
:class:`~repro.core.config.RL4QDTSConfig` fields, train + evaluate each
combination on a held-out workload, and get back a ranked result list. The
parameter-study benchmark builds on it, and downstream users can tune on
their own data with a few lines.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, replace

from repro.core.config import RL4QDTSConfig
from repro.core.rl4qdts import RL4QDTS
from repro.data.database import TrajectoryDatabase
from repro.queries.metrics import f1_score
from repro.workloads.generators import RangeQueryWorkload


@dataclass(frozen=True, slots=True)
class TrialResult:
    """Outcome of one hyper-parameter combination."""

    overrides: dict
    f1: float
    train_seconds: float
    simplify_seconds: float

    def __str__(self) -> str:
        params = ", ".join(f"{k}={v}" for k, v in self.overrides.items())
        return f"F1={self.f1:.3f} ({params})"


def evaluate_model(
    model: RL4QDTS,
    db: TrajectoryDatabase,
    test_workload: RangeQueryWorkload,
    budget_ratio: float,
    seed: int = 0,
) -> tuple[float, float]:
    """Mean range-query F1 of a model's simplification, plus its wall time.

    The test workload is evaluated on the original database for ground
    truth and on the simplified database for the prediction (Eq. 3).
    """
    start = time.perf_counter()
    simplified = model.simplify(db, budget_ratio=budget_ratio, seed=seed)
    elapsed = time.perf_counter() - start
    truths = test_workload.evaluate(db)
    results = test_workload.evaluate(simplified)
    f1 = sum(f1_score(t, r) for t, r in zip(truths, results)) / len(test_workload)
    return f1, elapsed


def grid_search(
    db: TrajectoryDatabase,
    param_grid: dict[str, list],
    base_config: RL4QDTSConfig | None = None,
    budget_ratio: float = 0.05,
    test_workload: RangeQueryWorkload | None = None,
    n_test_queries: int = 100,
    seed: int = 0,
    train_kwargs: dict | None = None,
) -> list[TrialResult]:
    """Train and score every combination of ``param_grid``; best first.

    Parameters
    ----------
    db:
        Database to tune on (training samples sub-databases from it; the
        final evaluation simplifies all of it).
    param_grid:
        Mapping of :class:`RL4QDTSConfig` field names to candidate values,
        e.g. ``{"start_level": [4, 6], "delta": [10, 25]}``.
    base_config:
        Config the overrides are applied to; defaults to
        :class:`RL4QDTSConfig()`.
    budget_ratio:
        Compression ratio used for the evaluation rollout.
    test_workload:
        Held-out range queries for scoring. Defaults to a data-distribution
        workload that none of the trials trains on (seeded separately).
    n_test_queries:
        Size of the default test workload.
    seed:
        Base seed; trial ``i`` trains with ``seed + i`` so trials are
        independent but reproducible.
    train_kwargs:
        Extra keyword arguments forwarded to :meth:`RL4QDTS.train`.
    """
    if not param_grid:
        raise ValueError("param_grid must contain at least one parameter")
    base_config = base_config or RL4QDTSConfig()
    unknown = set(param_grid) - set(RL4QDTSConfig.__dataclass_fields__)
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    if test_workload is None:
        test_workload = RangeQueryWorkload.from_data_distribution(
            db, n_test_queries, seed=seed + 987_654
        )
    train_kwargs = train_kwargs or {}

    names = list(param_grid)
    results: list[TrialResult] = []
    for i, combo in enumerate(itertools.product(*param_grid.values())):
        overrides = dict(zip(names, combo))
        config = replace(base_config, **overrides, seed=seed + i)
        start = time.perf_counter()
        model = RL4QDTS.train(db, config=config, **train_kwargs)
        train_seconds = time.perf_counter() - start
        f1, simplify_seconds = evaluate_model(
            model, db, test_workload, budget_ratio, seed=seed + i
        )
        results.append(
            TrialResult(overrides, f1, train_seconds, simplify_seconds)
        )
    results.sort(key=lambda r: -r.f1)
    return results
