"""RL4QDTS: query-accuracy-driven collective trajectory simplification.

This package reproduces the system described in "Collectively Simplifying
Trajectories in a Database: A Query Accuracy Driven Approach" (ICDE 2024).
It provides:

* a numpy-backed trajectory data model and synthetic dataset generators
  (:mod:`repro.data`),
* the four classical simplification error measures SED / PED / DAD / SAD
  (:mod:`repro.errors`),
* spatio-temporal indexes — octree, kd-tree, grid, STR R-tree, temporal
  interval index — unified behind the pluggable
  :class:`~repro.index.backend.IndexBackend` candidate-pruning protocol
  (:mod:`repro.index`), with a cost-based planner picking a backend per
  workload (:func:`~repro.queries.planner.plan_workload`),
* range / kNN / similarity / clustering query operators together with the
  F1-based quality measures used by the paper (:mod:`repro.queries`),
* a vectorized batch :class:`~repro.queries.engine.QueryEngine` evaluating
  whole range-query workloads in columnar passes over the database's flat
  point matrix, with per-state memoization — the training-reward and
  evaluation hot path (:mod:`repro.queries.engine`),
* query workload generators over several spatial distributions
  (:mod:`repro.workloads`),
* a from-scratch numpy DQN stack and the two cooperative agents, Agent-Cube
  and Agent-Point (:mod:`repro.rl`),
* the RL4QDTS algorithm itself (:mod:`repro.core`),
* the paper's 25 error-driven baselines with "E" and "W" adaptations
  (:mod:`repro.baselines`),
* the evaluation harness regenerating every table and figure
  (:mod:`repro.eval`),
* the sharded online query service — K-shard scatter/gather over per-shard
  engines (serial or one worker process per shard), streaming ingestion
  without rebuilds, and a typed request layer with caching and stats
  (:mod:`repro.service`) — plus an asyncio socket front-end
  (:mod:`repro.service.server`, ``repro serve --listen``),
* the unified query client API (:mod:`repro.client`): one typed
  :class:`~repro.client.Client` surface with three property-tested
  bit-identical transports — :class:`~repro.client.LocalClient` (one
  engine), :class:`~repro.client.ServiceClient` (sharded service), and
  :class:`~repro.client.RemoteClient` (socket), and
* end-to-end observability (:mod:`repro.obs`): mergeable log-bucketed
  latency histograms behind every serving stat, request tracing across
  the wire, and run provenance for the seeded open-loop load harness
  (``benchmarks/bench_load.py``).

Quickstart::

    from repro import LocalClient, RangeQueryWorkload, RL4QDTS, synthetic_database

    db = synthetic_database("geolife", n_trajectories=50, seed=7)
    workload = RangeQueryWorkload.from_data_distribution(db, n_queries=40, seed=7)
    simplifier = RL4QDTS.train(db, workload, budget_ratio=0.05, seed=7)
    simplified = simplifier.simplify(db, budget_ratio=0.05)

    with LocalClient(simplified) as client:      # the unified query surface:
        hits = client.range(workload).result_sets   # swap in ServiceClient /
        counts = client.count(workload.boxes).counts  # RemoteClient unchanged
"""

from repro.data import (
    Trajectory,
    TrajectoryDatabase,
    BoundingBox,
    synthetic_database,
    DATASET_PROFILES,
)
from repro.errors import sed_error, ped_error, dad_error, sad_error, trajectory_error
from repro.index import (
    Octree,
    KDTree,
    GridIndex,
    RTree,
    TemporalIndex,
    adaptive_resolution,
    IndexBackend,
    GridBackend,
    OctreeBackend,
    KDTreeBackend,
    RTreeBackend,
    TemporalBackend,
    BACKENDS,
    make_backend,
)
from repro.queries import (
    RangeQuery,
    QueryEngine,
    WorkloadPlan,
    plan_workload,
    range_query,
    knn_query,
    knn_query_batch,
    similarity_query,
    similarity_query_batch,
    traclus_cluster,
    f1_score,
)
from repro.workloads import RangeQueryWorkload
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.service import (
    CompactionPolicy,
    CompactionResult,
    ExactCompaction,
    QueryService,
    ShardManager,
    SimplifyingCompaction,
    make_compaction,
)
from repro.client import (
    Client,
    IngestResult,
    LocalClient,
    RemoteClient,
    RequestError,
    ServiceClient,
)
from repro.obs import (
    Histogram,
    MetricsRegistry,
    Tracer,
    mint_trace_id,
)
from repro.baselines import (
    top_down,
    bottom_up,
    span_search,
    simplify_database,
    BaselineSpec,
    all_baselines,
    greedy_qdts,
    optimal_min_error,
)

__version__ = "1.0.0"

__all__ = [
    "Trajectory",
    "TrajectoryDatabase",
    "BoundingBox",
    "synthetic_database",
    "DATASET_PROFILES",
    "sed_error",
    "ped_error",
    "dad_error",
    "sad_error",
    "trajectory_error",
    "Octree",
    "KDTree",
    "GridIndex",
    "adaptive_resolution",
    "RTree",
    "TemporalIndex",
    "IndexBackend",
    "GridBackend",
    "OctreeBackend",
    "KDTreeBackend",
    "RTreeBackend",
    "TemporalBackend",
    "BACKENDS",
    "make_backend",
    "RangeQuery",
    "QueryEngine",
    "WorkloadPlan",
    "plan_workload",
    "range_query",
    "knn_query",
    "knn_query_batch",
    "similarity_query",
    "similarity_query_batch",
    "traclus_cluster",
    "f1_score",
    "QueryService",
    "CompactionPolicy",
    "CompactionResult",
    "ExactCompaction",
    "SimplifyingCompaction",
    "make_compaction",
    "ShardManager",
    "Client",
    "IngestResult",
    "LocalClient",
    "ServiceClient",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "mint_trace_id",
    "RemoteClient",
    "RequestError",
    "RangeQueryWorkload",
    "RL4QDTS",
    "RL4QDTSConfig",
    "top_down",
    "bottom_up",
    "span_search",
    "simplify_database",
    "BaselineSpec",
    "all_baselines",
    "greedy_qdts",
    "optimal_min_error",
    "__version__",
]
