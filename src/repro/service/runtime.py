"""Per-shard query execution: a base engine plus a streamed pending delta.

A :class:`ShardRuntime` owns one shard's data and answers every service
query kind in *global*-id space. Execution is two-tier, LSM-style:

* the **base** tier is an immutable :class:`~repro.data.TrajectoryDatabase`
  over the shard's compacted trajectories with its own columnar
  :class:`~repro.queries.engine.QueryEngine` (CSR layout + memo), built
  lazily on first query;
* the **pending** tier holds trajectories streamed in since the last
  compaction. Queries answer over ``base U pending``: the base part runs
  through the engine's registered executor hooks, the pending part through
  the exact per-trajectory reference predicates — so an ingest is ``O(batch)``
  (list append + cache drop), never a CSR rebuild.

When the pending tier outgrows ``compact_threshold`` of the base (or
``min_compact_points``), :meth:`compact` folds it into a fresh base engine —
one rebuild amortized over many ingests. *What* the rebuilt base contains
is delegated to a pluggable :class:`~repro.service.compaction.CompactionPolicy`:
the default :class:`~repro.service.compaction.ExactCompaction` republishes
the merged tier unchanged (bit-identical answers), while a
:class:`~repro.service.compaction.SimplifyingCompaction` routes the cold
base through one of the paper's simplifiers under an error budget — the
hot pending tier always stays exact.

Every result is bit-identical to evaluating the same query on a fresh
single-database engine over the shard's trajectories: the pending paths
reuse the same reference arithmetic the engine is property-tested against
(:func:`~repro.queries.similarity.candidate_matches`,
:func:`~repro.queries.aggregate.spatial_bin_counts`, the EDR batch DP).

Runtimes are executor-side objects: the serial executor keeps them
in-process, the process executor builds one inside each shard worker from
the pickled :class:`~repro.service.sharding.Shard` snapshot.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.data.store import derive_store
from repro.data.trajectory import Trajectory
from repro.index.backend import make_backend, validate_backend_name
from repro.obs.metrics import MetricsRegistry
from repro.queries.aggregate import spatial_bin_counts
from repro.queries.planner import plan_workload
from repro.queries.edr import edr_distances_pairs
from repro.queries.engine import QueryEngine
from repro.queries.knn import (
    _resolve_measure,
    _window_restriction,
    knn_query_batch,
    top_k_pairs,
)
from repro.queries.similarity import (
    candidate_matches,
    query_checkpoints,
    resolve_time_windows,
)
from repro.service._deprecation import warn_once
from repro.service.compaction import CompactionResult, make_compaction
from repro.service.sharding import Shard, ShardSnapshot


class ShardRuntime:
    """Executes service queries over one shard (base engine + pending delta).

    Parameters
    ----------
    shard:
        Membership snapshot; copied, so later manager-side bookkeeping does
        not leak into the runtime (deltas arrive only via :meth:`ingest`).
    resolution:
        Grid resolution of the base engine's CSR layout (grid backend only).
    compact_threshold:
        Compact when pending points exceed this fraction of base points.
    min_compact_points:
        ... but never before the pending tier holds this many points.
    backend:
        Index backend of the base engine: a name from
        :data:`repro.index.backend.BACKENDS` or ``"auto"``, which defers to
        the cost-based planner on the first boxed workload this runtime
        executes (falling back to the grid if a box-free operation arrives
        first). Backend choice never changes results — only pruning cost.
    compaction:
        Base-rebuild policy: a :class:`~repro.service.compaction.CompactionPolicy`,
        a name from :data:`~repro.service.compaction.COMPACTION_POLICIES`,
        or ``None`` for the exact default. A non-exact policy also runs
        once at construction — the shard's initial base is already a cold
        tier — publishing the simplified epoch-0 segments.
    """

    def __init__(
        self,
        shard: Shard | ShardSnapshot,
        resolution: tuple[int, int, int] = (32, 32, 16),
        compact_threshold: float = 0.5,
        min_compact_points: int = 2048,
        backend: str = "grid",
        store=None,
        compaction=None,
        store_tag: str | None = None,
    ) -> None:
        validate_backend_name(backend, allow_auto=True)
        self.index = shard.index
        self.resolution = resolution
        self.backend_spec = backend
        #: Resolved backend name (None until the base engine is built).
        self.backend_name: str | None = None
        self.compact_threshold = float(compact_threshold)
        self.min_compact_points = int(min_compact_points)
        #: Columnar-backed base database (views into the mapped/columnar
        #: matrix); None when the base was built from trajectory objects.
        self._base_db: TrajectoryDatabase | None = None
        #: Snapshot handles this runtime attached (released, never unlinked
        #: — the exporting store owns those segments).
        self._attached: list = []
        #: Handles this runtime published itself (compacted epochs; owned,
        #: unlinked when superseded or on close).
        self._published: list = []
        if isinstance(shard, ShardSnapshot):
            matrix = shard.matrix.resolve()
            offsets = shard.offsets.resolve()
            self._attached = [shard.matrix, shard.offsets]
            if len(offsets) > 1:
                self._base_db = TrajectoryDatabase.from_columnar(matrix, offsets)
                self._base = list(self._base_db.trajectories)
            else:
                self._base = []
            store_spec = store if store is not None else shard.store_spec
        else:
            self._base = list(shard.trajectories)
            store_spec = store if store is not None else "heap"
        # The runtime's own provider: compacted base tiers republish
        # through it (same segment family as the snapshot under shm).
        # Replicated executors pass a per-spawn ``store_tag`` — two
        # replicas of one shard (or a restarted replica whose predecessor's
        # segments are still resident) must never publish into the same
        # sub-family, or their epoch segment names would collide.
        self._store = derive_store(store_spec, tag=store_tag or f"w{shard.index}")
        self._owns_store = self._store is not store_spec
        self._base_gids = np.asarray(shard.global_ids, dtype=np.int64)
        self._base_points = sum(len(t) for t in self._base)
        self._pending: list[tuple[int, Trajectory]] = []
        self._pending_points = 0
        self._db: TrajectoryDatabase | None = None
        self._engine: QueryEngine | None = None
        self._pending_matrix: np.ndarray | None = None
        self._pending_owner_gids: np.ndarray | None = None
        self.compactions = 0
        #: Shard-local instrumentation: per-op latency histograms
        #: (``op.range``, ``op.ingest``, ...) and counters, shipped to the
        #: service as a JSON snapshot via the ``metrics`` scatter op and
        #: merged across shards there.
        self.metrics = MetricsRegistry()
        self._closed = False
        self.compaction = make_compaction(compaction)
        #: Last policy pass (None until the first rebuild under this policy).
        self.last_compaction: CompactionResult | None = None
        #: Counter dicts of policy passes not yet drained by the service.
        self._compaction_log: list[dict] = []
        if not self.compaction.is_exact and self._base:
            # The initial base is already a cold tier: run the policy once
            # and publish the simplified epoch-0 segments. Exact policies
            # skip this, preserving the zero-copy snapshot mapping.
            self.rebuild_base()

    # ------------------------------------------------------------------- tiers
    @property
    def engine(self) -> QueryEngine | None:
        """The base tier's engine (None while the base is empty)."""
        return self._engine_for(None)

    def _engine_for(self, boxes) -> QueryEngine | None:
        """The base engine, built on first use.

        ``boxes`` (a boxed workload, or None for box-free operations) only
        matters on the call that actually builds the engine, and only under
        ``backend="auto"``: the planner estimates per-backend pruning cost
        for that first workload and the choice then sticks until the next
        compaction rebuild. Results are identical whichever backend ends up
        chosen.
        """
        if self._engine is None and self._base:
            self._db = (
                self._base_db
                if self._base_db is not None
                else TrajectoryDatabase(self._base)
            )
            spec = self.backend_spec
            if spec == "auto":
                plan = plan_workload(self._db, boxes if boxes is not None else [])
                self.backend_name = plan.name
                self._engine = QueryEngine(self._db, backend=plan.backend)
            elif spec == "grid":
                self.backend_name = "grid"
                self._engine = QueryEngine(self._db, resolution=self.resolution)
            else:
                self.backend_name = spec
                self._engine = QueryEngine(
                    self._db, backend=make_backend(spec, self._db)
                )
        return self._engine

    @property
    def n_base(self) -> int:
        return len(self._base)

    @property
    def n_pending(self) -> int:
        return len(self._pending)

    def info(self) -> dict:
        """Shard-tier sizes (for service describe / stats output)."""
        return {
            "index": self.index,
            "base_trajectories": len(self._base),
            "pending_trajectories": len(self._pending),
            "points": self._base_points + self._pending_points,
            "compactions": self.compactions,
            "backend": self.backend_name or self.backend_spec,
            "compaction": self.compaction.name,
        }

    def take_compactions(self) -> list[dict]:
        """Drain the per-pass compaction counters accumulated since the
        last drain (the service absorbs them into its stats)."""
        log, self._compaction_log = self._compaction_log, []
        return log

    def extent(self) -> BoundingBox | None:
        """Union bounding box of the shard's trajectories (base U pending).

        None while the shard is empty. Equal to the manager's
        per-shard extent (:meth:`ShardManager.shard_extents`) — both union
        the same member boxes — which is what makes service-side kNN shard
        skipping sound without a runtime round-trip.
        """
        extent: BoundingBox | None = None
        for traj in self._base:
            box = traj.bounding_box
            extent = box if extent is None else extent.union(box)
        for _, traj in self._pending:
            box = traj.bounding_box
            extent = box if extent is None else extent.union(box)
        return extent

    def ingest(self, batch: list[tuple[int, Trajectory]]) -> list[dict]:
        """Append a routed batch to the pending tier (auto-compacting).

        Returns the compaction counters of any policy passes this ingest
        triggered (usually empty), so executors can carry them back to
        the service's stats without an extra round-trip.
        """
        start = time.perf_counter()
        batch_points = sum(len(t) for _, t in batch)
        self._pending.extend(batch)
        self._pending_points += batch_points
        self._pending_matrix = None
        self._pending_owner_gids = None
        if self._pending_points >= max(
            self.min_compact_points, self.compact_threshold * self._base_points
        ):
            self.compact()
        self.metrics.histogram("op.ingest").record(time.perf_counter() - start)
        self.metrics.counter("ingest.trajectories").inc(len(batch))
        self.metrics.counter("ingest.points").inc(batch_points)
        return self.take_compactions()

    def replay(self, batches: list[list[tuple[int, Trajectory]]]) -> None:
        """Re-apply logged ingest batches (replica restart catch-up).

        A restarted replica is built from the shard's *original* base
        snapshot and must replay every batch ingested since, in arrival
        order — compaction decisions are deterministic in that order, so
        the replica converges on the same tiers its siblings hold. The
        replayed passes' compaction counters are discarded: the service
        already absorbed them from the replica that first acked each
        batch, and draining them again would double-count.
        """
        for batch in batches:
            self.ingest(batch)
        self._compaction_log = []
        self.metrics.counter("replay.batches").inc(len(batches))

    def compact(self) -> None:
        """Fold the pending tier into a fresh base engine.

        An empty pending tier makes this a **no-op**: no policy pass, no
        new epoch, no segment churn (regression-tested — a spurious
        republish would unlink and re-create identical shm segments).

        The merged base runs through the compaction policy and is then
        re-materialized through the runtime's store provider: under a
        shared-memory store the new CSR is *republished* as a fresh
        segment tagged with the next compaction epoch and the previous
        epoch's runtime-owned segment is unlinked. Pending tiers never
        touch the store or the policy — they stay heap-local and exact
        until folded here.
        """
        if not self._pending:
            return
        self._base.extend(t for _, t in self._pending)
        self._base_gids = np.concatenate(
            [self._base_gids, np.array([g for g, _ in self._pending], dtype=np.int64)]
        )
        self._pending = []
        self._pending_points = 0
        self._pending_matrix = None
        self._pending_owner_gids = None
        self.compactions += 1
        self.rebuild_base()

    def rebuild_base(self) -> None:
        """Run the compaction policy over the staged base and republish.

        The policy decides what the new base *contains*
        (:class:`~repro.service.compaction.ExactCompaction` keeps the
        staged arrays untouched); this method owns the mechanics —
        store puts tagged with the current epoch, columnar re-view, and
        retiring the superseded epoch's handles.
        """
        staged = TrajectoryDatabase(self._base)
        result = self.compaction.compact(staged)
        self.last_compaction = result
        counters = result.counters()
        self._compaction_log.append(counters)
        self.metrics.counter("compaction.passes").inc()
        self.metrics.counter("compaction.points_dropped").inc(
            int(counters.get("points_dropped", 0))
        )
        self.metrics.histogram("op.compact").record(
            float(counters.get("elapsed_s", 0.0))
        )
        published = result.database
        self._db = None
        self._engine = None
        self.backend_name = None  # "auto" re-plans on the rebuilt base
        epoch = self.compactions
        matrix_handle = self._store.put(published.point_matrix(), label=f"e{epoch}m")
        offsets_handle = self._store.put(
            published.point_offsets(), label=f"e{epoch}o"
        )
        base_db = TrajectoryDatabase.from_columnar(
            matrix_handle.resolve(), offsets_handle.resolve()
        )
        # Swap in the republished views, then retire the previous epoch:
        # attached snapshot handles are released (their store owns them),
        # runtime-published ones are unlinked outright.
        self._base_db = base_db
        self._base = list(base_db.trajectories)
        self._base_points = base_db.total_points
        for handle in self._attached:
            handle.release()
        self._attached = []
        for handle in self._published:
            self._store.drop(handle)
            handle.release()
        self._published = [matrix_handle, offsets_handle]

    def _republish_base(self) -> None:
        """Deprecated spelling of :meth:`rebuild_base` (pre-policy name)."""
        warn_once(
            "ShardRuntime._republish_base",
            "ShardRuntime._republish_base() was renamed; use "
            "ShardRuntime.rebuild_base(), which runs the compaction policy "
            "before republishing",
        )
        self.rebuild_base()

    def close(self) -> None:
        """Release mapped segments and unlink runtime-published ones.

        Idempotent. Called by executors on shutdown (the worker main loop
        runs it in a ``finally``); after close the runtime holds no data.
        """
        if self._closed:
            return
        self._closed = True
        self._engine = None
        self._db = None
        self._base_db = None
        self._base = []
        self._pending = []
        self._pending_matrix = None
        self._pending_owner_gids = None
        for handle in self._published:
            self._store.drop(handle)
            handle.release()
        self._published = []
        for handle in self._attached:
            handle.release()
        self._attached = []
        if self._owns_store:
            self._store.close()

    def _pending_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked pending points and the owning global id per row."""
        if self._pending_matrix is None:
            if self._pending:
                self._pending_matrix = np.concatenate(
                    [t.points for _, t in self._pending]
                )
                self._pending_owner_gids = np.repeat(
                    np.array([g for g, _ in self._pending], dtype=np.int64),
                    [len(t) for _, t in self._pending],
                )
            else:
                self._pending_matrix = np.empty((0, 3))
                self._pending_owner_gids = np.empty(0, dtype=np.int64)
        return self._pending_matrix, self._pending_owner_gids

    def _to_global(self, local_sets: list[set[int]]) -> list[set[int]]:
        gids = self._base_gids
        return [{int(gids[t]) for t in s} for s in local_sets]

    #: Scatter ops whose shard-side wall time is recorded into the shard
    #: registry's ``op.<name>`` histogram (query kinds; bookkeeping ops
    #: like info/metrics are not timed).
    TIMED_OPS = frozenset({"range", "count", "histogram", "knn", "similarity"})

    # ------------------------------------------------------------------ queries
    def execute(self, op: str, payload: dict):
        """Dispatch one scatter/gather operation (the executor wire API)."""
        try:
            fn = getattr(self, "op_" + op)
        except AttributeError:
            raise KeyError(f"shard runtime has no operation {op!r}") from None
        if op in self.TIMED_OPS:
            start = time.perf_counter()
            result = fn(**payload)
            self.metrics.histogram("op." + op).record(
                time.perf_counter() - start
            )
            return result
        return fn(**payload)

    def op_range(self, boxes: list[BoundingBox]) -> list[set[int]]:
        """Per-box matching global ids (the shard's share of a range workload)."""
        engine = self._engine_for(boxes)
        if engine is not None:
            results = self._to_global(engine.execute("range", boxes=boxes))
        else:
            results = [set() for _ in boxes]
        if self._pending:
            points, owners = self._pending_columns()
            for qi, box in enumerate(boxes):
                mask = box.contains_points(points)
                if mask.any():
                    results[qi].update(int(g) for g in np.unique(owners[mask]))
        return results

    def op_count(self, boxes: list[BoundingBox]) -> np.ndarray:
        """Per-box point counts over ``base U pending`` (int64, exact)."""
        engine = self._engine_for(boxes)
        counts = (
            engine.execute("count", boxes=boxes)
            if engine is not None
            else np.zeros(len(boxes), dtype=np.int64)
        )
        if self._pending:
            points, _ = self._pending_columns()
            counts = counts + np.array(
                [int(box.contains_points(points).sum()) for box in boxes],
                dtype=np.int64,
            )
        return counts

    def op_histogram(self, grid: int, box: BoundingBox) -> np.ndarray:
        """The shard's raw (unnormalized) partial density raster over ``box``.

        Partial rasters are integer-valued, so the service-side sum over
        shards is bit-identical to one single-database binning pass.
        """
        engine = self.engine
        hist = (
            engine.execute("histogram", grid=grid, box=box, normalize=False)
            if engine is not None
            else np.zeros((grid, grid))
        )
        if self._pending:
            points, _ = self._pending_columns()
            hist = hist + spatial_bin_counts(points[:, :2], grid, box)
        return hist

    def op_knn(
        self,
        queries: list[Trajectory],
        k: int,
        time_windows: list[tuple[float, float] | None] | None,
        measure="edr",
        eps: float = 2000.0,
    ) -> list[list[tuple[float, int]]]:
        """Per-query top-``k`` ``(distance, global_id)`` pairs of this shard.

        Finite distances only, sorted by ``(distance, global id)``. Any
        global top-``k`` neighbour ranks within the top-``k`` of its own
        shard, so the service's k-way merge of these pairs reproduces the
        single-database ranking exactly.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        windows = resolve_time_windows(queries, time_windows)
        merged: list[list[tuple[float, int]]] = [[] for _ in queries]
        engine = self.engine
        if engine is not None and queries:
            base_pairs = knn_query_batch(
                self._db,
                queries,
                k,
                windows,
                measure,
                eps=eps,
                engine=engine,
                return_pairs=True,
            )
            gids = self._base_gids
            for qi, pairs in enumerate(base_pairs):
                merged[qi].extend((d, int(gids[tid])) for d, tid in pairs)
        if self._pending and queries:
            self._knn_pending(merged, queries, windows, measure, eps)
        return [top_k_pairs(pairs, k) for pairs in merged]

    def _knn_pending(self, merged, queries, windows, measure, eps) -> None:
        """Score pending trajectories against every non-degenerate query."""
        query_windows = [
            _window_restriction(q, ts, te) for q, (ts, te) in zip(queries, windows)
        ]
        flat_q: list[Trajectory] = []
        flat_c: list[Trajectory] = []
        flat_at: list[tuple[int, int]] = []  # (query index, candidate gid)
        for qi, (qw, (ts, te)) in enumerate(zip(query_windows, windows)):
            if qw is None:
                continue
            for gid, traj in self._pending:
                restricted = _window_restriction(traj, ts, te)
                if restricted is None:
                    continue
                flat_q.append(qw)
                flat_c.append(restricted)
                flat_at.append((qi, gid))
        if not flat_at:
            return
        if measure == "edr":
            # Same batched DP as the engine's base path (exactly equal to
            # the per-pair reference, see repro.queries.edr).
            distances = edr_distances_pairs(flat_q, flat_c, eps)
        else:
            theta = _resolve_measure(measure, eps, None)
            distances = [theta(a, b) for a, b in zip(flat_q, flat_c)]
        for (qi, gid), d in zip(flat_at, distances):
            merged[qi].append((float(d), int(gid)))

    def op_similarity(
        self,
        queries: list[Trajectory],
        delta: float,
        time_windows: list[tuple[float, float] | None] | None = None,
        n_checkpoints: int = 32,
    ) -> list[set[int]]:
        """Per-query matching global ids under the synchronized-distance test."""
        engine = self.engine
        if engine is not None:
            results = self._to_global(
                engine.execute(
                    "similarity",
                    queries=queries,
                    delta=delta,
                    time_windows=time_windows,
                    n_checkpoints=n_checkpoints,
                )
            )
        else:
            results = [set() for _ in queries]
        if not self._pending:
            return results
        windows = resolve_time_windows(queries, time_windows)
        for qi, (q, (ts, te)) in enumerate(zip(queries, windows)):
            checkpoints = query_checkpoints(q, ts, te, n_checkpoints)
            if len(checkpoints) == 0:
                continue
            query_positions = q.positions_at(checkpoints)
            query_alive = (checkpoints >= q.times[0]) & (checkpoints <= q.times[-1])
            for gid, traj in self._pending:
                if traj.times[-1] < ts or traj.times[0] > te:
                    continue
                if candidate_matches(
                    traj, checkpoints, query_positions, query_alive, delta
                ):
                    results[qi].add(int(gid))
        return results

    def op_info(self) -> dict:
        return self.info()

    def op_metrics(self) -> dict:
        """This shard's registry snapshot (merged service-side over shards)."""
        return self.metrics.snapshot()

    def op_take_compactions(self) -> list[dict]:
        return self.take_compactions()

    def op_extent(self) -> BoundingBox | None:
        return self.extent()

    def op_clear_cache(self) -> None:
        """Drop the base engine's memo (benchmark fairness / memory release)."""
        if self._engine is not None:
            self._engine.clear_cache()

    def op_ping(self) -> dict:
        """Liveness heartbeat: answers iff the worker's serve loop is
        responsive (the watchdog's deadline probe — a hung worker whose
        process is still alive never reaches this)."""
        return {
            "index": self.index,
            "pid": os.getpid(),
            "base_trajectories": len(self._base),
            "pending_trajectories": len(self._pending),
        }

    def op_set_index(self, index: int) -> None:
        """Renumber this runtime after an online shard split/merge.

        Shards after the surgery point keep their data but shift position
        in the routing table; only the label moves (membership, store
        segments, and engine state are untouched).
        """
        self.index = int(index)
