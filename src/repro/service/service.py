"""The online serving layer: :class:`QueryService`.

One service object owns a :class:`~repro.service.sharding.ShardManager`
(membership, routing, epoch), a scatter/gather executor (serial or
per-shard worker processes), a per-``(request, shard-epoch)`` LRU result
cache, and latency/throughput counters. Typed requests
(:mod:`repro.service.requests`) go in; typed responses with serving
metadata come out.

Merge semantics (all exact — the service is property-tested bit-identical
to a fresh single-database :class:`~repro.queries.engine.QueryEngine`):

* **range / similarity** — shards hold disjoint trajectory sets, so the
  per-query union of shard result sets is the global result set;
* **count / histogram** — integer-valued partials summed over shards equal
  the one-pass global tally; normalization happens once, after the merge;
* **kNN** — each shard returns its top-``k`` ``(distance, global id)``
  pairs; any global top-``k`` neighbour ranks within the top-``k`` of its
  own shard, so a k-way merge ordered by ``(distance, id)`` — the same
  total order the single-database path sorts by — reproduces the global
  ranking exactly.

The kNN scatter additionally **skips shards** that provably cannot change
the answer, using per-shard extents and an admissible distance lower bound
(:func:`knn_shard_lower_bound`): a shard temporally disjoint from a
query's window has no comparable candidate at all, and under EDR a shard
whose Chebyshev spatial gap to the query window exceeds ``eps`` can only
produce distances ``>= len(query window)``. The serial executor visits
shards best-bound-first and skips once the running k-th distance beats a
shard's bound *strictly* (ties could still displace on id); the process
executor dispatches the un-boundable shards concurrently, then prunes the
deferred ones against the gathered k-th distance before a second wave.
Skipped-shard counts surface in :attr:`QueryService.stats`.

Streaming ingestion (:meth:`QueryService.ingest`) routes trajectory
batches through the manager's partitioner to the shard runtimes' pending
tiers (no CSR rebuild; shards auto-compact when the delta outgrows the
base) and bumps the shard epoch, which invalidates the result cache by
construction.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.data.store import make_store
from repro.data.trajectory import Trajectory
from repro.index.backend import chebyshev_gap, validate_backend_name
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Tracer
from repro.service._deprecation import warn_once
from repro.service._sync import RWLock
from repro.service.compaction import make_compaction
from repro.service.executors import EXECUTORS, make_executor
from repro.service.requests import (
    CountRequest,
    CountResponse,
    HistogramRequest,
    HistogramResponse,
    KnnRequest,
    KnnResponse,
    RangeRequest,
    RangeResponse,
    SimilarityRequest,
    SimilarityResponse,
    serve_cached,
)
from repro.service.sharding import ShardManager
from repro.service.watchdog import Watchdog


def knn_shard_lower_bound(
    shard_extent: BoundingBox | None,
    window_box: BoundingBox,
    n_window: int,
    eps: float,
    edr: bool,
) -> float:
    """Admissible lower bound on one shard's kNN distances for one query.

    ``window_box`` is the bounding box of the query's window restriction
    widened to the full time window ``[ts, te]``; ``n_window`` its point
    count. The bound never exceeds any distance the shard could actually
    return, which is what makes skipping exact:

    * ``inf`` when the shard is empty or its extent is temporally disjoint
      from the window — then no shard trajectory has a point inside the
      window, so none has a usable (>= 2 point) window restriction and the
      shard's result is empty regardless of the measure;
    * under EDR (whose match test is per-dimension,
      ``|dx| <= eps and |dy| <= eps``), ``n_window`` when the Chebyshev
      spatial gap between the shard extent and the window box exceeds
      ``eps`` — no (query point, shard point) pair can then match, and an
      EDR alignment without a single match costs ``max(n, m) >= n_window``
      edits;
    * ``0`` otherwise (the shard may hold arbitrarily close candidates).
    """
    if shard_extent is None:
        return float("inf")
    gap = chebyshev_gap(shard_extent, window_box)
    if np.isinf(gap):
        return float("inf")
    if edr and gap > eps:
        return float(n_window)
    return 0.0


@dataclass
class ServiceStats:
    """Latency / throughput / cache counters of one service instance.

    Latency is held as one mergeable log-bucketed
    :class:`~repro.obs.metrics.Histogram` per request kind (plus one for
    compaction passes), so p50/p95/p99 come straight from the buckets.
    The histograms also track the exact running sum and max in record
    order, which keeps the long-standing ``summary()`` mean/max keys
    bit-identical to the plain accumulators they replaced; the old
    ``total_latency_s`` / ``max_latency_s`` attribute surface remains
    available as read-only views.

    All mutating methods and :meth:`summary` are serialized behind one
    internal re-entrant lock: the server's worker pool records from many
    threads concurrently, and an unguarded histogram ``+=`` would lose
    counts. Single-threaded users (``LocalClient``) pay one uncontended
    lock acquire per record.

    The queue instruments make overload visible: ``queue_depth_hwm`` is
    the high-water mark of concurrently admitted server requests, and
    ``queue_wait`` the distribution of time each request spent queued
    between frame decode and worker-thread pickup.
    """

    requests: dict[str, int] = field(default_factory=dict)
    cache_hits: dict[str, int] = field(default_factory=dict)
    #: Requests with no cache key at all (e.g. callable-measure kNN): they
    #: can never hit, so counting them as misses would understate the hit
    #: rate of the cacheable traffic.
    uncacheable: dict[str, int] = field(default_factory=dict)
    #: Per-kind serving-latency distributions (seconds).
    latency: dict[str, Histogram] = field(default_factory=dict)
    ingest_batches: int = 0
    ingest_trajectories: int = 0
    ingest_points: int = 0
    #: kNN scatter fan-out accounting: shard executions actually dispatched
    #: vs. shards skipped via the distance lower bound.
    knn_shards_dispatched: int = 0
    knn_shards_skipped: int = 0
    #: Compaction accounting, absorbed from the shard runtimes' drained
    #: policy passes: pass count, points the policy dropped, and the base
    #: tiers' bytes before/after the latest passes (summed over shards).
    compactions: int = 0
    points_dropped: int = 0
    bytes_base_before: int = 0
    bytes_base_after: int = 0
    #: Distribution of shard-side policy-pass wall times (seconds).
    compaction_latency: Histogram = field(default_factory=Histogram)
    #: Online rebalance accounting: shard splits/merges performed and the
    #: distribution of reshard pause times (manager surgery + snapshot
    #: export + executor worker swap, all under the epoch write lock).
    splits: int = 0
    merges: int = 0
    rebalance_latency: Histogram = field(default_factory=Histogram)
    #: High-water mark of concurrently admitted (in-flight) server
    #: requests, recorded by the socket front-end's admission control.
    queue_depth_hwm: int = 0
    #: Distribution of per-request queue waits (seconds): frame decode to
    #: worker-thread pickup. Empty unless a concurrent server records it.
    queue_wait: Histogram = field(default_factory=Histogram)
    #: Serializes every record/summary against the server's worker pool.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    @property
    def bytes_base(self) -> int:
        """Current (post-policy) byte size of the absorbed base rebuilds."""
        return self.bytes_base_after

    # Read-only views matching the pre-histogram attribute surface.
    @property
    def total_latency_s(self) -> dict[str, float]:
        return {kind: h.sum for kind, h in self.latency.items()}

    @property
    def max_latency_s(self) -> dict[str, float]:
        return {kind: h.max for kind, h in self.latency.items()}

    @property
    def compaction_latency_s(self) -> float:
        return self.compaction_latency.sum

    @property
    def max_compaction_latency_s(self) -> float:
        return self.compaction_latency.max

    def latency_histogram(self, kind: str) -> Histogram:
        hist = self.latency.get(kind)
        if hist is None:
            hist = self.latency[kind] = Histogram()
        return hist

    def record_knn_scatter(self, dispatched: int, skipped: int) -> None:
        with self._lock:
            self.knn_shards_dispatched += dispatched
            self.knn_shards_skipped += skipped

    def record_compaction(self, counters: dict) -> None:
        """Absorb one shard-side policy pass (a ``CompactionResult.counters()``
        dict drained through the executor)."""
        with self._lock:
            self.compactions += 1
            self.points_dropped += int(counters.get("points_dropped", 0))
            self.bytes_base_before += int(counters.get("bytes_before", 0))
            self.bytes_base_after += int(counters.get("bytes_after", 0))
            self.compaction_latency.record(float(counters.get("elapsed_s", 0.0)))

    def record_rebalance(self, action: str, elapsed_s: float) -> None:
        """One online reshard: ``action`` is ``"split"`` or ``"merge"``,
        ``elapsed_s`` the full pause (surgery to executor swap)."""
        with self._lock:
            if action == "split":
                self.splits += 1
            else:
                self.merges += 1
            self.rebalance_latency.record(elapsed_s)

    def record(
        self, kind: str, latency_s: float, cached: bool, cacheable: bool = True
    ) -> None:
        with self._lock:
            self.requests[kind] = self.requests.get(kind, 0) + 1
            if cached:
                self.cache_hits[kind] = self.cache_hits.get(kind, 0) + 1
            elif not cacheable:
                self.uncacheable[kind] = self.uncacheable.get(kind, 0) + 1
            self.latency_histogram(kind).record(latency_s)

    def record_ingest(self, trajectories: list[Trajectory]) -> None:
        with self._lock:
            self.ingest_batches += 1
            self.ingest_trajectories += len(trajectories)
            self.ingest_points += sum(len(t) for t in trajectories)

    def record_queue_depth(self, depth: int) -> None:
        """Track the admission-time in-flight depth (high-water mark)."""
        with self._lock:
            if depth > self.queue_depth_hwm:
                self.queue_depth_hwm = depth

    def record_queue_wait(self, wait_s: float) -> None:
        """One request's decode-to-worker-pickup wait (seconds)."""
        with self._lock:
            self.queue_wait.record(wait_s)

    @property
    def n_requests(self) -> int:
        return sum(self.requests.values())

    @property
    def n_cache_hits(self) -> int:
        return sum(self.cache_hits.values())

    @property
    def n_uncacheable(self) -> int:
        return sum(self.uncacheable.values())

    def cache_misses(self, kind: str) -> int:
        """True misses of ``kind``: lookups that could have hit but did not.

        Uncacheable requests (no cache key) are excluded — they never enter
        the LRU, so counting them as misses would be wrong.
        """
        return (
            self.requests.get(kind, 0)
            - self.cache_hits.get(kind, 0)
            - self.uncacheable.get(kind, 0)
        )

    def summary(self) -> dict[str, float | int]:
        """A flat report: per-kind counts, hit rates, and latency stats.

        All pre-histogram keys keep their exact former values (means and
        maxes come from the histograms' exact sum/max accumulators); the
        per-kind ``*_p50/p95/p99_latency_ms`` keys are bucket-derived.
        The queue instruments appear only once something recorded them, so
        single-threaded transports keep their historical key set.
        """
        with self._lock:
            return self._summary_locked()

    def _summary_locked(self) -> dict[str, float | int]:
        out: dict[str, float | int] = {
            "requests": self.n_requests,
            "cache_hits": self.n_cache_hits,
            "ingest_batches": self.ingest_batches,
            "ingest_trajectories": self.ingest_trajectories,
            "ingest_points": self.ingest_points,
            "knn_shards_dispatched": self.knn_shards_dispatched,
            "knn_shards_skipped": self.knn_shards_skipped,
            "uncacheable_requests": self.n_uncacheable,
            "compactions": self.compactions,
            "points_dropped": self.points_dropped,
            "bytes_base": self.bytes_base,
        }
        if self.compactions:
            out["bytes_base_before"] = self.bytes_base_before
            out["compaction_mean_latency_ms"] = (
                1000.0 * self.compaction_latency.sum / self.compactions
            )
            out["compaction_max_latency_ms"] = (
                1000.0 * self.compaction_latency.max
            )
            out["compaction_p95_latency_ms"] = (
                1000.0 * self.compaction_latency.quantile(0.95)
            )
        if self.splits or self.merges:
            out["shard_splits"] = self.splits
            out["shard_merges"] = self.merges
            out["rebalance_mean_latency_ms"] = (
                1000.0
                * self.rebalance_latency.sum
                / self.rebalance_latency.count
            )
            out["rebalance_max_latency_ms"] = (
                1000.0 * self.rebalance_latency.max
            )
        if self.queue_wait.count or self.queue_depth_hwm:
            out["queue_depth_hwm"] = self.queue_depth_hwm
            out["queue_wait_p50_ms"] = 1000.0 * self.queue_wait.quantile(0.50)
            out["queue_wait_p95_ms"] = 1000.0 * self.queue_wait.quantile(0.95)
            out["queue_wait_p99_ms"] = 1000.0 * self.queue_wait.quantile(0.99)
            out["queue_wait_max_ms"] = 1000.0 * self.queue_wait.max
        for kind in sorted(self.requests):
            n = self.requests[kind]
            hist = self.latency_histogram(kind)
            out[f"{kind}_requests"] = n
            out[f"{kind}_cache_hits"] = self.cache_hits.get(kind, 0)
            out[f"{kind}_cache_misses"] = self.cache_misses(kind)
            out[f"{kind}_mean_latency_ms"] = 1000.0 * hist.sum / n
            out[f"{kind}_max_latency_ms"] = 1000.0 * hist.max
            out[f"{kind}_p50_latency_ms"] = 1000.0 * hist.quantile(0.50)
            out[f"{kind}_p95_latency_ms"] = 1000.0 * hist.quantile(0.95)
            out[f"{kind}_p99_latency_ms"] = 1000.0 * hist.quantile(0.99)
        return out

    def histograms(self) -> dict[str, dict]:
        """JSON-safe encodings of every latency histogram (per request
        kind, plus ``"compaction"`` once any pass has been absorbed and
        ``"queue_wait"`` once the server's admission control records)."""
        with self._lock:
            out = {
                kind: hist.to_json()
                for kind, hist in sorted(self.latency.items())
            }
            if self.compactions:
                out["compaction"] = self.compaction_latency.to_json()
            if self.rebalance_latency.count:
                out["rebalance"] = self.rebalance_latency.to_json()
            if self.queue_wait.count:
                out["queue_wait"] = self.queue_wait.to_json()
            return out


class QueryService:
    """Sharded online query service over a trajectory database.

    Parameters
    ----------
    db:
        Database to serve (partitioned at construction). Alternatively pass
        a prebuilt ``manager``.
    n_shards, partitioner:
        Shard count and partition strategy (``"hash"`` or ``"spatial"``),
        forwarded to :meth:`ShardManager.create`.
    executor:
        ``"serial"`` (in-process reference), ``"process"`` (one worker
        process per shard), or an executor factory.
    resolution:
        Per-shard engine grid resolution.
    cache_size:
        LRU entries of whole-request results, keyed on
        ``(request cache key, shard epoch)``.
    compact_threshold, min_compact_points:
        Pending-tier compaction policy of the shard runtimes.
    index:
        Index backend of the per-shard engines: a name from
        :data:`repro.index.backend.BACKENDS`, or ``"auto"`` to let each
        runtime's cost-based planner choose on its first boxed workload.
        Backend choice never changes results, only pruning cost.
    mp_context:
        Multiprocessing start method for the process executor.
    store:
        Array-store provider for the shard base tiers: ``"heap"``
        (private copies; default) or ``"shm"`` (named shared-memory
        segments that process-executor workers map zero-copy instead of
        unpickling). Also accepts a store instance, in which case the
        caller keeps ownership and must close it after the service.
        Store choice never changes results, only memory layout.
    compaction:
        Base-rebuild policy of the shard runtimes: ``"exact"`` (default;
        bit-identical answers), one of ``"uniform"``/``"greedy"``/``"rl"``
        (the cold base tiers run through that simplifier on every rebuild
        — answers become approximate within the error budget), or a
        prebuilt :class:`~repro.service.compaction.CompactionPolicy`
        instance (e.g. carrying a trained RL4QDTS model loaded via
        :func:`~repro.service.compaction.make_compaction`).
    error_budget:
        Per-trajectory, per-pass error bound for a named simplifying
        policy (see :mod:`repro.service.compaction`); ignored for
        ``"exact"`` and for policy instances (which carry their own).
    replicas:
        Worker processes per shard for the process executor (default 1).
        With R > 1 each query routes to one live replica and fails over
        to a sibling on worker death; ingest fans out to every replica.
        See :mod:`repro.service.replication`.
    rebalance_threshold:
        Enable online shard rebalancing (spatial partitioner only): after
        each ingest, a shard whose point count exceeds ``threshold x
        mean`` splits at its median member centroid, and the coldest
        adjacent pair whose combined count stays under ``mean /
        threshold`` merges. Must be > 1; ``None`` (default) disables.
    watchdog_interval:
        Poll period in seconds of the background
        :class:`~repro.service.watchdog.Watchdog` (heartbeat dead/hung
        replicas and restart them from snapshot + replayed ingest log);
        ``None`` (default) runs no watchdog.
    watchdog_deadline:
        Seconds a heartbeat may take before a replica counts as hung.
    """

    def __init__(
        self,
        db: TrajectoryDatabase | None = None,
        *,
        manager: ShardManager | None = None,
        n_shards: int = 4,
        partitioner: str = "hash",
        executor: str = "serial",
        resolution: tuple[int, int, int] = (32, 32, 16),
        cache_size: int = 64,
        compact_threshold: float = 0.5,
        min_compact_points: int = 2048,
        index: str = "grid",
        mp_context: str | None = None,
        store: str = "heap",
        compaction="exact",
        error_budget: float | None = None,
        trace_capacity: int = 4096,
        replicas: int = 1,
        rebalance_threshold: float | None = None,
        watchdog_interval: float | None = None,
        watchdog_deadline: float = 5.0,
    ) -> None:
        if (db is None) == (manager is None):
            raise ValueError("pass exactly one of db or manager")
        validate_backend_name(index, allow_auto=True)
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if rebalance_threshold is not None and rebalance_threshold <= 1.0:
            raise ValueError("rebalance_threshold must be > 1")
        if manager is None:
            manager = ShardManager.create(db, n_shards, partitioner)
        self.manager = manager
        self.index = index
        self.tracer = Tracer(trace_capacity)
        self.executor_name = executor if isinstance(executor, str) else "custom"
        self.compaction = make_compaction(compaction, error_budget=error_budget)
        self.replicas = int(replicas)
        self.rebalance_threshold = (
            None if rebalance_threshold is None else float(rebalance_threshold)
        )
        self._store = make_store(store)
        self._owns_store = self._store is not store
        self.store_name = self._store.spec()[0]
        try:
            self._executor = make_executor(
                executor,
                manager.export_snapshots(self._store),
                resolution=resolution,
                compact_threshold=compact_threshold,
                min_compact_points=min_compact_points,
                backend=index,
                compaction=self.compaction,
                **({"mp_context": mp_context} if executor == "process" else {}),
                # Only threaded through when set: custom executor factories
                # that predate replication keep working unchanged.
                **({"replicas": self.replicas} if self.replicas != 1 else {}),
            )
        except BaseException:
            if self._owns_store:
                self._store.close()
            raise
        self._cache: OrderedDict[tuple, object] = OrderedDict()
        self._cache_size = int(cache_size)
        self.stats = ServiceStats()
        self._closed = False
        self._failed = False
        # The concurrency contract (see ARCHITECTURE.md "Concurrency
        # model"): any number of queries execute concurrently under the
        # epoch lock's read side; ingest — the only epoch bump — takes the
        # write side exclusively, so reads of a given epoch never
        # interleave with the write that produces the next one. The cache
        # lock guards the (not thread-safe) OrderedDict LRU only.
        self._epoch_lock = RWLock()
        self._cache_lock = threading.Lock()
        if not self.compaction.is_exact:
            # A simplifying policy already ran once per shard at runtime
            # construction (the initial base is a cold tier); absorb those
            # passes so stats start consistent with the published tiers.
            self._absorb_compactions(
                self._executor.broadcast("take_compactions", {})
            )
        self._watchdog: Watchdog | None = None
        if watchdog_interval is not None:
            # Restarts run under the epoch READ lock: concurrent with
            # queries (replica membership changes are internal to a
            # set) but excluded from ingest and reshard surgery, whose
            # write side must never race a replica's replay catch-up.
            self._watchdog = Watchdog(
                self._executor,
                interval=watchdog_interval,
                deadline=watchdog_deadline,
                lock=self._epoch_lock.read,
            ).start()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")
        if self._failed:
            raise RuntimeError(
                "service is in a failed state (a shard delivery failed "
                "partway; manager and shard runtimes may disagree) — "
                "rebuild the service from its manager's database"
            )

    # ----------------------------------------------------------------- requests
    def execute(self, request, *, trace_id: str | None = None):
        """Serve one typed request: cache lookup, shard fan-out, exact merge.

        ``trace_id`` (minted in a client or accepted from the wire) turns
        on span emission for this request: cache lookup, kNN planning,
        per-shard execution, and merge land in :attr:`tracer`. Untraced
        requests (``None``) serve identically with no spans recorded.
        """
        self._check_open()
        with self._epoch_lock.read():
            return serve_cached(
                request,
                epoch=self.manager.epoch,
                n_shards=self.manager.n_shards,
                cache=self._cache,
                cache_size=self._cache_size,
                stats=self.stats,
                dispatch=lambda req: self._dispatch(req, trace_id),
                tracer=self.tracer,
                trace_id=trace_id,
                cache_lock=self._cache_lock,
            )

    def _dispatch(self, request, trace_id: str | None = None):
        """Scatter one request across the shards and merge exactly."""
        # Executors pick the ambient trace context up from this attribute
        # (set here rather than passed per-call so custom executors that
        # predate tracing keep working unchanged).
        self._executor.trace_context = (self.tracer, trace_id)
        try:
            if request.kind == "knn":
                shard_results = self._scatter_knn(request, trace_id)
            else:
                shard_results = self._executor.broadcast(
                    request.kind, request.payload(self)
                )
        finally:
            self._executor.trace_context = None
        with self.tracer.span(trace_id, "merge", kind=request.kind):
            return self._merge(request, shard_results)

    # ------------------------------------------------------------- kNN scatter
    def _knn_shard_bounds(self, request) -> "list[list[float]] | None":
        """Per-shard, per-query distance lower bounds, or None to disable.

        Returns ``bounds[shard][query]`` built from the manager's per-shard
        extents and each query's window-restriction box via
        :func:`knn_shard_lower_bound`. Any failure to compute bounds (e.g.
        malformed windows) disables pruning rather than changing how such
        requests fail: the plain broadcast then reproduces the unpruned
        error behavior exactly.
        """
        from repro.queries.knn import _window_restriction
        from repro.queries.similarity import resolve_time_windows

        try:
            queries = list(request.queries)
            windows = resolve_time_windows(queries, request.time_windows)
            edr = request.measure == "edr"
            infos: list[tuple[BoundingBox, int] | None] = []
            for q, (ts, te) in zip(queries, windows):
                qw = _window_restriction(q, float(ts), float(te))
                if qw is None:
                    # Degenerate query: every shard returns [] for it, so it
                    # never blocks a skip.
                    infos.append(None)
                    continue
                box = BoundingBox.from_points(qw.points)
                infos.append(
                    (
                        # Widen to the full window: shard candidacy needs
                        # points anywhere in [ts, te], not only where the
                        # query's own samples sit.
                        BoundingBox(
                            box.xmin, box.xmax, box.ymin, box.ymax,
                            float(ts), float(te),
                        ),
                        len(qw),
                    )
                )
            return [
                [
                    float("inf")
                    if info is None
                    else knn_shard_lower_bound(
                        extent, info[0], info[1], float(request.eps), edr
                    )
                    for info in infos
                ]
                for extent in self.manager.shard_extents()
            ]
        except Exception:
            return None

    @staticmethod
    def _knn_skippable(
        shard_bounds: list[float], merged: list[list], k: int
    ) -> bool:
        """True when a shard provably cannot change any query's top-k.

        ``merged`` holds the running per-query top-k ``(distance, id)``
        pairs over the shards dispatched so far. A shard is skippable for a
        query when its bound is ``inf`` (no comparable candidate exists
        there), or when k results are already held and the bound STRICTLY
        exceeds the running k-th distance — a tie could still displace the
        k-th neighbour through the ``(distance, id)`` order. The running
        k-th distance only decreases as more shards merge in, so a skip
        decided against it remains valid against the final one.
        """
        for lb, pairs in zip(shard_bounds, merged):
            if np.isinf(lb):
                continue
            if len(pairs) < k or lb <= pairs[k - 1][0]:
                return False
        return True

    def _scatter_knn(self, request, trace_id: str | None = None) -> list:
        """Fan a kNN request out, skipping provably irrelevant shards.

        Returns per-shard partial results in shard order (empty partials
        for skipped shards), so :meth:`_merge` applies unchanged — skipped
        shards' true pairs all rank strictly after the merged k-th
        neighbour, making the merge bit-identical to a full broadcast.
        """
        n_shards = self.manager.n_shards
        payload = request.payload(self)
        plan_start = time.perf_counter()
        bounds = self._knn_shard_bounds(request)
        plan_s = time.perf_counter() - plan_start
        if (
            bounds is None
            or n_shards <= 1
            or int(request.k) < 1  # let shards raise their documented error
            or not hasattr(self._executor, "run_on")
        ):
            self.tracer.record(
                trace_id, "plan", plan_s, kind="knn",
                bounded=False, dispatched=n_shards, skipped=0,
            )
            results = self._executor.broadcast("knn", payload)
            self.stats.record_knn_scatter(len(results), 0)
            return results
        n_queries = len(request.queries)
        k = int(request.k)
        shard_results: list = [None] * n_shards
        merged: list[list] = [[] for _ in range(n_queries)]
        dispatched = skipped = 0

        from repro.queries.knn import top_k_pairs

        def absorb(shard_idx: int, result) -> None:
            shard_results[shard_idx] = result
            for qi, pairs in enumerate(result):
                if pairs:
                    merged[qi] = top_k_pairs(
                        merged[qi] + [tuple(p) for p in pairs], k
                    )

        if self.executor_name == "serial":
            # Best-bound-first: visiting likely-close shards early drives
            # the running k-th distance down before far shards are tested.
            order = sorted(
                range(n_shards), key=lambda s: min(bounds[s], default=0.0)
            )
            for s in order:
                if self._knn_skippable(bounds[s], merged, k):
                    skipped += 1
                    shard_results[s] = [[] for _ in range(n_queries)]
                else:
                    absorb(s, self._executor.run_on([s], "knn", payload)[s])
                    dispatched += 1
        else:
            # Concurrent executor: one wave for the shards no bound can
            # ever exclude, then prune the deferred ones against the
            # gathered k-th distances before a (concurrent) second wave.
            wave1: list[int] = []
            deferred: list[int] = []
            for s in range(n_shards):
                if all(np.isinf(b) for b in bounds[s]):
                    skipped += 1
                    shard_results[s] = [[] for _ in range(n_queries)]
                elif any(b == 0.0 for b in bounds[s]):
                    wave1.append(s)
                else:
                    deferred.append(s)
            if wave1:
                for s, result in self._executor.run_on(
                    wave1, "knn", payload
                ).items():
                    absorb(s, result)
                dispatched += len(wave1)
            wave2: list[int] = []
            for s in deferred:
                if self._knn_skippable(bounds[s], merged, k):
                    skipped += 1
                    shard_results[s] = [[] for _ in range(n_queries)]
                else:
                    wave2.append(s)
            if wave2:
                for s, result in self._executor.run_on(
                    wave2, "knn", payload
                ).items():
                    absorb(s, result)
                dispatched += len(wave2)
        self.stats.record_knn_scatter(dispatched, skipped)
        self.tracer.record(
            trace_id, "plan", plan_s, kind="knn",
            bounded=True, dispatched=dispatched, skipped=skipped,
        )
        return shard_results

    def _merge(self, request, shard_results):
        """Combine per-shard partials into the canonical (immutable) payload."""
        kind = request.kind
        if kind in ("range", "similarity"):
            n_queries = len(shard_results[0]) if shard_results else 0
            merged = [set() for _ in range(n_queries)]
            for shard_sets in shard_results:
                for qi, ids in enumerate(shard_sets):
                    merged[qi] |= ids
            return tuple(frozenset(s) for s in merged)
        if kind == "count":
            total = np.sum(shard_results, axis=0, dtype=np.int64)
            total = np.asarray(total, dtype=np.int64)
            total.setflags(write=False)
            return total
        if kind == "histogram":
            hist = np.sum(shard_results, axis=0)
            hist = np.asarray(hist, dtype=float)
            if request.normalize:
                # Normalize once, after the merge — identical arithmetic to
                # the single-engine path (sum then one division).
                total = hist.sum()
                if total > 0:
                    hist = hist / total
            hist.setflags(write=False)
            return hist
        if kind == "knn":
            from repro.queries.knn import top_k_pairs

            n_queries = len(request.queries)
            merged_pairs = []
            for qi in range(n_queries):
                pairs = [
                    pair for shard_pairs in shard_results for pair in shard_pairs[qi]
                ]
                merged_pairs.append(tuple(top_k_pairs(pairs, request.k)))
            return tuple(merged_pairs)
        raise ValueError(f"unknown request kind {kind!r}")

    # ------------------------------------------------- deprecated convenience
    # The kwargs-style helpers predate the unified client API; each keeps
    # working but warns once per process. New code should build typed
    # requests (or use a repro.client.Client, which carries the same
    # convenience surface over every transport).
    def _warn_helper(self, name: str) -> None:
        warn_once(
            f"QueryService.{name}",
            f"QueryService.{name}() is deprecated; use the unified client "
            f"API instead: repro.client.ServiceClient(service).{name}(...) "
            f"or QueryService.execute(<typed request>)",
        )

    def range(self, workload) -> RangeResponse:
        """Deprecated: use :class:`repro.client.ServiceClient` / ``execute``."""
        self._warn_helper("range")
        return self.execute(RangeRequest.from_workload(workload))

    def count(self, boxes) -> CountResponse:
        """Deprecated: use :class:`repro.client.ServiceClient` / ``execute``."""
        self._warn_helper("count")
        return self.execute(CountRequest.from_workload(boxes))

    def histogram(
        self, grid: int = 32, box=None, normalize: bool = False
    ) -> HistogramResponse:
        """Deprecated: use :class:`repro.client.ServiceClient` / ``execute``."""
        self._warn_helper("histogram")
        return self.execute(HistogramRequest(grid, box, normalize))

    def knn(
        self,
        queries,
        k: int,
        time_windows=None,
        measure="edr",
        eps: float = 2000.0,
    ) -> KnnResponse:
        """Deprecated: use :class:`repro.client.ServiceClient` / ``execute``."""
        self._warn_helper("knn")
        return self.execute(
            KnnRequest(
                tuple(queries),
                k,
                None if time_windows is None else tuple(time_windows),
                measure,
                eps,
            )
        )

    def similarity(
        self, queries, delta: float, time_windows=None, n_checkpoints: int = 32
    ) -> SimilarityResponse:
        """Deprecated: use :class:`repro.client.ServiceClient` / ``execute``."""
        self._warn_helper("similarity")
        return self.execute(
            SimilarityRequest(
                tuple(queries),
                delta,
                None if time_windows is None else tuple(time_windows),
                n_checkpoints,
            )
        )

    # ------------------------------------------------------------------- ingest
    def ingest(self, trajectories, *, trace_id: str | None = None) -> int:
        """Stream a batch of trajectories into the service.

        Routes each trajectory to its shard (pending tier — no engine
        rebuild) and bumps the shard epoch, so cached results from earlier
        epochs can no longer be served. Returns the number ingested.

        Delivery is transactional from the manager's point of view: ids and
        membership commit only after every target shard accepted its rows,
        so a failed delivery leaves queries consistent. If delivery fails
        *partway* (some shard runtimes applied rows the manager never
        committed), runtimes and manager can no longer agree — the service
        then latches into a failed state and refuses further work instead
        of silently serving from diverged shards.

        Ingest holds the epoch **write** lock: no query executes while
        shard state changes and the epoch bumps, so concurrent readers
        always observe a consistent ``(epoch, shard state)`` pair.
        """
        self._check_open()
        batch = list(trajectories)
        if not batch:
            return 0
        with self._epoch_lock.write():
            return self._ingest_locked(batch, trace_id)

    def _ingest_locked(self, batch: list, trace_id: str | None) -> int:
        with self.tracer.span(trace_id, "ingest", batch=len(batch)):
            routed = self.manager.plan_ingest(batch)
            try:
                drained = self._executor.ingest(routed)
            except Exception:
                # The executor may have applied the batch on a subset of
                # shards before failing; results would silently omit or
                # double-count rows, so stop serving.
                self._failed = True
                raise
            self.manager.commit_ingest(routed)
            self.stats.record_ingest(batch)
            self._absorb_compactions(drained, trace_id=trace_id)
            if self.rebalance_threshold is not None:
                self._maybe_rebalance_locked(trace_id)
        return len(batch)

    # --------------------------------------------------------------- rebalance
    def _maybe_rebalance_locked(self, trace_id: str | None = None) -> None:
        """Rebalance while the manager reports skew (epoch write lock held).

        At most a few plans per ingest: each split/merge changes the count
        landscape, so the planner re-evaluates after every step; the cap
        bounds the ingest's pause when a single batch creates deep skew
        (the remainder is picked up by the next ingest).
        """
        if not hasattr(self._executor, "reshard"):
            return
        for _ in range(4):
            plan = self.manager.plan_rebalance(self.rebalance_threshold)
            if plan is None:
                return
            self._reshard_locked(*plan, trace_id=trace_id)

    def _reshard_locked(
        self, action: str, shard_idx: int, trace_id: str | None = None
    ) -> None:
        """One split/merge: manager surgery -> snapshot export -> executor
        worker swap, atomically behind the epoch write lock.

        The replacement shards' snapshots are exported under an
        epoch-qualified label prefix so their segment names never collide
        with the initial layout's (still resident in the same store
        family; they are reclaimed when the store closes — the trade-off
        is bounded residency for never blocking on old readers). Any
        failure latches the service failed: executor topology and manager
        routing can no longer be assumed to agree.
        """
        start = time.perf_counter()
        try:
            if action == "split":
                replaced = self.manager.split_shard(shard_idx)
                n_removed = 1
            elif action == "merge":
                replaced = self.manager.merge_shards(shard_idx)
                n_removed = 2
            else:
                raise ValueError(f"unknown rebalance action {action!r}")
            epoch = self.manager.epoch
            snapshots = [
                self.manager.export_snapshot(
                    self._store, shard, label_prefix=f"e{epoch}s{shard.index}"
                )
                for shard in replaced
            ]
            self._executor.reshard(shard_idx, n_removed, snapshots)
        except Exception:
            self._failed = True
            raise
        elapsed = time.perf_counter() - start
        self.stats.record_rebalance(action, elapsed)
        self.tracer.record(
            trace_id, "reshard", elapsed, action=action, shard=shard_idx
        )

    def split_shard(self, shard_idx: int) -> int:
        """Split a hot shard online at its median member centroid.

        Spatial partitioner only. Runs the full reshard protocol (manager
        surgery, epoch bump, snapshot republish, executor worker swap)
        behind the epoch write lock; queries before and after see
        bit-identical results. Returns the new shard count.
        """
        self._check_open()
        with self._epoch_lock.write():
            self._reshard_locked("split", int(shard_idx))
            return self.manager.n_shards

    def merge_shards(self, shard_idx: int) -> int:
        """Merge ``shard_idx`` with its right neighbour online (spatial
        partitioner only; same protocol as :meth:`split_shard`). Returns
        the new shard count."""
        self._check_open()
        with self._epoch_lock.write():
            self._reshard_locked("merge", int(shard_idx))
            return self.manager.n_shards

    def _absorb_compactions(
        self, per_shard: "list | None", trace_id: str | None = None
    ) -> None:
        """Fold shard-side compaction counter dicts into the stats (and,
        when tracing, emit one ``compaction_pass`` span per pass with the
        shard-measured wall time)."""
        for shard_idx, counters_list in enumerate(per_shard or []):
            for counters in counters_list or []:
                self.stats.record_compaction(counters)
                self.tracer.record(
                    trace_id,
                    "compaction_pass",
                    float(counters.get("elapsed_s", 0.0)),
                    shard=shard_idx,
                    points_dropped=int(counters.get("points_dropped", 0)),
                    bytes_after=int(counters.get("bytes_after", 0)),
                )

    # ------------------------------------------------------------ observability
    def metrics_report(self, include_shards: bool = True) -> dict:
        """One JSON-safe snapshot of everything this service can measure.

        The report the wire ``metrics`` op (and ``repro serve
        --metrics-interval``) ships::

            {
              "summary":    ServiceStats.summary() (bit-identical),
              "histograms": per-kind latency histograms (bucket encodings),
              "store":      array-store counters (segments/bytes for shm),
              "transport":  executor pipe accounting (process executor),
              "shards":     merged per-shard runtime registries
                            (op.* histograms folded over shards),
              "trace":      ring-buffer occupancy,
              "epoch", "n_shards", "executor"
            }

        ``include_shards=False`` skips the shard broadcast (one scatter
        round-trip) for cheap periodic snapshots.
        """
        self._check_open()
        with self._epoch_lock.read():
            return self._metrics_report_locked(include_shards)

    def _metrics_report_locked(self, include_shards: bool) -> dict:
        report: dict = {
            "summary": self.stats.summary(),
            "histograms": self.stats.histograms(),
            "epoch": self.manager.epoch,
            "n_shards": self.manager.n_shards,
            "executor": self.executor_name,
            "trace": {
                "buffered_spans": len(self.tracer),
                "recorded_spans": self.tracer.recorded,
            },
        }
        store_stats = getattr(self._store, "stats", None)
        if callable(store_stats):
            report["store"] = store_stats()
        transport_stats = getattr(self._executor, "transport_stats", None)
        if callable(transport_stats):
            report["transport"] = transport_stats()
        replication_stats = getattr(self._executor, "replication_stats", None)
        if callable(replication_stats):
            try:
                report["replication"] = replication_stats()
            except Exception as exc:
                report["replication_error"] = f"{type(exc).__name__}: {exc}"
        if self._watchdog is not None:
            report["watchdog"] = self._watchdog.stats()
        if include_shards:
            try:
                merged = MetricsRegistry()
                for snapshot in self._executor.broadcast("metrics", {}):
                    merged.merge_snapshot(snapshot)
                report["shards"] = merged.snapshot()
            except Exception as exc:
                # A broken executor must stay visible in the report, not
                # take the whole snapshot down with it.
                report["shards_error"] = f"{type(exc).__name__}: {exc}"
        return report

    def trace_export(self, trace_id: str | None = None) -> str:
        """The buffered spans as JSONL (optionally for one trace id)."""
        return self.tracer.export_jsonl(trace_id)

    # ---------------------------------------------------------------- lifecycle
    def describe(self) -> dict:
        """Shard layout and counters (CLI ``repro serve`` banner)."""
        with self._epoch_lock.read():
            return self._describe_locked()

    def _describe_locked(self) -> dict:
        info = {
            "n_shards": self.manager.n_shards,
            "executor": self.executor_name,
            "store": self.store_name,
            "partitioner": self.manager.partitioner.name,
            "index": self.index,
            "epoch": self.manager.epoch,
            "trajectories": self.manager.n_trajectories,
            "points": self.manager.total_points,
            "compaction": self.compaction.spec(),
            "replicas": self.replicas,
        }
        replication_stats = getattr(self._executor, "replication_stats", None)
        if callable(replication_stats):
            try:
                info["replication"] = replication_stats()
            except Exception as exc:
                info["replication_error"] = f"{type(exc).__name__}: {exc}"
        try:
            info["shards"] = self._executor.broadcast("info", {})
        except Exception as exc:
            # Layout is still useful when workers are gone, but a broken
            # executor must stay visible, not be silently omitted.
            info["shards_error"] = f"{type(exc).__name__}: {exc}"
        return info

    @property
    def watchdog(self) -> "Watchdog | None":
        """The background liveness monitor (None unless enabled)."""
        return self._watchdog

    def database(self) -> TrajectoryDatabase:
        """The served database materialized in global-id order (reference)."""
        return self.manager.database()

    def clear_cache(self, deep: bool = False) -> None:
        """Drop the request LRU; ``deep`` also clears every shard engine memo."""
        with self._cache_lock:
            self._cache.clear()
        if deep:
            with self._epoch_lock.read():
                self._executor.broadcast("clear_cache", {})

    def close(self) -> None:
        """Release executor workers, then the snapshot store (idempotent).

        Order matters: the store must outlive the executor so that shard
        runtimes can detach their mapped segments before the family owner
        unlinks them (the owner's close also sweeps any segments orphaned
        by killed workers).
        """
        if self._closed:
            return
        # Stop the watchdog before taking the write lock: its restart
        # phase holds the read side, and a poll firing mid-teardown would
        # try to resurrect workers the executor is stopping.
        if self._watchdog is not None:
            self._watchdog.stop()
        # Drain in-flight readers before tearing the executor down: the
        # write side excludes every concurrent execute()/metrics call.
        with self._epoch_lock.write():
            if self._closed:
                return
            self._closed = True
            try:
                self._executor.close()
            finally:
                if self._owns_store:
                    self._store.close()

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


__all__ = [
    "QueryService",
    "ServiceStats",
    "EXECUTORS",
    "knn_shard_lower_bound",
]
