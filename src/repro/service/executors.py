"""Scatter/gather executors fanning service operations across shards.

Two interchangeable implementations of one small contract:

* ``broadcast(op, payload)`` — run one operation on every shard, returning
  the per-shard results in shard order;
* ``run_on(shard_indices, op, payload)`` — run one operation on a *subset*
  of shards only, returning ``{shard: result}`` (the primitive behind the
  service's kNN shard skipping: pruned shards are simply never messaged);
* ``ingest(routed)``        — deliver routed ``{shard: batch}`` deltas,
  returning each messaged shard's drained compaction counters (in shard
  order) so the service's stats see policy passes triggered worker-side;
* ``close()``               — release workers (idempotent).

Plus the fault-tolerance surface (both executors implement it; serial's
is trivially healthy since its runtimes share the caller's process):
``liveness()`` (non-blocking dead-shard probe), ``ping(deadline)``
(heartbeat that retires hung workers), ``restart_dead()`` (respawn
retired replicas from snapshot + replayed ingest log), ``reshard(...)``
(online split/merge surgery on the worker topology), and
``replication_stats()``.

:class:`SerialShardExecutor` is the in-process reference: shards execute
one after another, so it adds no parallelism but also no serialization
cost — and it is the oracle the process executor is tested against.

:class:`ProcessShardExecutor` runs a :class:`~repro.service.replication.ReplicaSet`
of ``replicas`` long-lived worker processes per shard. Each worker
materializes its :class:`~repro.service.runtime.ShardRuntime` once from
the shard snapshot — for a columnar
:class:`~repro.service.sharding.ShardSnapshot` backed by the
shared-memory store this *maps* the base tier instead of unpickling it,
so R replicas share one copy of the base data — and keeps it warm across
requests (CSR layout, engine memo, pending tier), communicating over a
dedicated pipe. Messages travel as pickle-5 frames with numpy payloads
shipped out-of-band (codec in :mod:`repro.service.replication`). A
broadcast checks out one live replica per target shard and writes all
requests before reading any reply, so shards genuinely overlap; a
replica that dies mid-request is retired and the query retries on a live
sibling (ingest instead fans out to every replica and is never retried —
see the replication module docstring for the rules). Workers die with
the executor (daemon processes + explicit stop).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from typing import Iterable

from repro.obs.metrics import MetricsRegistry
from repro.service.replication import (
    _INLINE_LIMIT,  # noqa: F401  (historical home; tests import from here)
    _FramePickler,  # noqa: F401
    _dump_message,
    _load_message,  # noqa: F401
    _recv_frames,  # noqa: F401
    _recv_message,  # noqa: F401
    _restore_array,  # noqa: F401
    _send_frames,  # noqa: F401
    _send_message,  # noqa: F401
    _shard_worker_main,  # noqa: F401
    PipeStats,
    ReplicaGone,
    ReplicaSet,
    ShardExecutionError,
)
from repro.service.runtime import ShardRuntime
from repro.service.sharding import Shard, ShardSnapshot

EXECUTORS = ("serial", "process")

__all__ = [
    "EXECUTORS",
    "ProcessShardExecutor",
    "SerialShardExecutor",
    "ShardExecutionError",
    "make_executor",
]


class _TraceContextProperty:
    """Thread-local ``trace_context`` descriptor shared by both executors.

    The service sets the ambient ``(tracer, trace_id)`` around each scatter
    call. With the server's worker pool, many requests run through ONE
    executor concurrently, so the context must be per-thread: a plain
    attribute would let request A's trace id label request B's shard spans.
    Kept as an attribute-shaped API (get/set ``executor.trace_context``)
    so executor implementations that predate tracing — including custom
    ones — keep working unchanged.
    """

    def __set_name__(self, owner, name):
        self._slot = f"_{name}_local"

    def _local(self, instance) -> threading.local:
        local = instance.__dict__.get(self._slot)
        if local is None:
            local = threading.local()
            instance.__dict__[self._slot] = local
        return local

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return getattr(self._local(instance), "ctx", None)

    def __set__(self, instance, value):
        self._local(instance).ctx = value


class SerialShardExecutor:
    """In-process reference executor: shards run sequentially.

    ``replicas`` is accepted for interface parity with the process
    executor but means nothing here — an in-process runtime cannot die
    independently of the caller, so there is nothing to fail over to.

    Thread safety: each shard runtime is guarded by its own lock, so
    concurrent requests from the server's worker pool serialize *per
    shard* while still overlapping across shards (and overlapping all
    pure-python bookkeeping). Single-threaded callers never contend.
    """

    name = "serial"
    #: Ambient per-thread ``(tracer, trace_id)`` set by the service around
    #: scatter calls (None when the current request is untraced).
    trace_context = _TraceContextProperty()

    def __init__(
        self,
        shards: Iterable[Shard | ShardSnapshot],
        replicas: int = 1,
        **runtime_kwargs,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self._closed = False
        self._runtime_kwargs = dict(runtime_kwargs)
        # Store sub-family tags are allocated executor-wide, never reused:
        # after an online reshard a new shard could otherwise adopt a
        # renumbered survivor's tag and collide on epoch segment names.
        self._tags = itertools.count()
        self.runtimes = [
            ShardRuntime(s, store_tag=f"w{next(self._tags)}", **runtime_kwargs)
            for s in shards
        ]
        self._locks = [threading.Lock() for _ in self.runtimes]

    def _check_usable(self) -> None:
        # Same use-after-close contract as ProcessShardExecutor: a closed
        # executor must never silently answer (transport-swap tests would
        # otherwise pass through it).
        if self._closed:
            raise ShardExecutionError("executor is closed")

    def _execute_traced(self, shard_idx: int, op: str, payload: dict):
        ctx = self.trace_context
        if not ctx or ctx[1] is None:
            with self._locks[shard_idx]:
                return self.runtimes[shard_idx].execute(op, payload)
        tracer, trace_id = ctx
        start = time.perf_counter()
        with self._locks[shard_idx]:
            result = self.runtimes[shard_idx].execute(op, payload)
        tracer.record(
            trace_id,
            "shard_exec",
            time.perf_counter() - start,
            shard=shard_idx,
            op=op,
        )
        return result

    def broadcast(self, op: str, payload: dict) -> list:
        self._check_usable()
        return [
            self._execute_traced(i, op, payload)
            for i in range(len(self.runtimes))
        ]

    def run_on(self, shard_indices, op: str, payload: dict) -> dict[int, object]:
        """Run ``op`` on the given shards only; ``{shard: result}``."""
        self._check_usable()
        return {
            int(i): self._execute_traced(int(i), op, payload)
            for i in shard_indices
        }

    def _ingest_one(self, shard_idx: int, batch) -> object:
        with self._locks[shard_idx]:
            return self.runtimes[shard_idx].ingest(batch)

    def ingest(self, routed: dict[int, list]) -> list:
        self._check_usable()
        return [
            self._ingest_one(shard_idx, routed[shard_idx])
            for shard_idx in sorted(routed)
        ]

    # --------------------------------------------------- fault tolerance
    def liveness(self) -> dict:
        """Non-blocking health probe (in-process runtimes are always live)."""
        n = len(self.runtimes)
        return {
            "alive": not self._closed,
            "dead_shards": [],
            "replicas_live": n,
            "replicas_total": n,
            "shards": [
                {
                    "shard": i,
                    "replicas": 1,
                    "live": 1,
                    "pids": [os.getpid()],
                    "dead_replicas": [],
                }
                for i in range(n)
            ],
        }

    def ping(self, deadline: float) -> int:
        """Heartbeat (no-op: nothing out-of-process can hang). Returns 0."""
        self._check_usable()
        return 0

    def restart_dead(self) -> int:
        """Nothing to restart in-process. Returns 0."""
        self._check_usable()
        return 0

    def replication_stats(self) -> dict:
        n = len(self.runtimes)
        return {
            "replicas_per_shard": 1,
            "replicas_live": n,
            "replicas_total": n,
            "dead_shards": [],
            "counters": {},
        }

    def reshard(self, start: int, n_removed: int, shards) -> None:
        """Replace ``runtimes[start:start+n_removed]`` after a split/merge.

        ``shards`` are the manager's replacement shards (already carrying
        their post-surgery indices); survivors after the splice are
        renumbered to their new positions. The caller (the service) holds
        the epoch write lock, so no query runs concurrently.
        """
        self._check_usable()
        if start < 0 or n_removed < 1 or start + n_removed > len(self.runtimes):
            raise ValueError(
                f"reshard range [{start}, {start + n_removed}) out of bounds "
                f"for {len(self.runtimes)} shards"
            )
        fresh = [
            ShardRuntime(s, store_tag=f"w{next(self._tags)}", **self._runtime_kwargs)
            for s in shards
        ]
        old = self.runtimes[start : start + n_removed]
        self.runtimes[start : start + n_removed] = fresh
        self._locks[start : start + n_removed] = [threading.Lock() for _ in fresh]
        for pos, runtime in enumerate(self.runtimes):
            if runtime.index != pos:
                runtime.op_set_index(pos)
        for runtime in old:
            runtime.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard_idx, runtime in enumerate(self.runtimes):
            with self._locks[shard_idx]:
                runtime.close()

    def __enter__(self) -> "SerialShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ProcessShardExecutor:
    """A replica set of worker processes per shard, scatter/gather over pipes.

    ``replicas`` sets R, the worker count per shard (default 1 — the
    historical one-worker-per-shard topology). Queries fail over across
    replicas; see :mod:`repro.service.replication` for the routing,
    ingest-fan-out, and restart rules.

    ``mp_context`` selects the multiprocessing start method; the default
    honours the ``REPRO_MP_CONTEXT`` environment variable (CI runs the
    service suite under ``spawn``, which fork would otherwise mask
    pickling and shm-lifecycle bugs from), then prefers ``fork`` (workers
    inherit the parent's modules instantly) and falls back to the platform
    default where fork is unavailable.
    """

    name = "process"
    #: Ambient per-thread ``(tracer, trace_id)`` — see
    #: :attr:`SerialShardExecutor.trace_context`.
    trace_context = _TraceContextProperty()

    def __init__(
        self,
        shards: Iterable[Shard | ShardSnapshot],
        mp_context: str | None = None,
        replicas: int = 1,
        **runtime_kwargs,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        if mp_context is None:
            mp_context = os.environ.get("REPRO_MP_CONTEXT") or None
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(mp_context)
        self._replicas = int(replicas)
        self._runtime_kwargs = dict(runtime_kwargs)
        self._closed = False
        # Parent-side pipe accounting, shared across every replica set
        # (scatter/gather traffic only; the stop handshake at close is
        # not counted).
        self._pipe_stats = PipeStats()
        # Replication instruments (failovers/restarts/hung/latency) live in
        # their own registry so they survive the service's per-shard merge
        # untouched; Counter/Gauge are not thread-safe, hence the lock.
        self._replication_registry = MetricsRegistry()
        self._registry_lock = threading.Lock()
        # Store sub-family tags are allocated executor-wide, never reused:
        # two replicas of one shard — or a restarted replica racing its
        # predecessor's still-resident segments, or a post-reshard shard
        # adopting a renumbered survivor's old index — must never publish
        # epoch segments under the same tag.
        self._tags = itertools.count()
        self._sets: list[ReplicaSet] = []
        try:
            for shard in shards:
                self._sets.append(self._make_set(shard))
        except Exception:
            self.close()
            raise

    def _make_set(self, shard: Shard | ShardSnapshot) -> ReplicaSet:
        return ReplicaSet(
            shard,
            ctx=self._ctx,
            runtime_kwargs=self._runtime_kwargs,
            replicas=self._replicas,
            pipe_stats=self._pipe_stats,
            registry=self._replication_registry,
            registry_lock=self._registry_lock,
            next_tag=lambda: f"w{next(self._tags)}",
        )

    # ------------------------------------------------------------- topology
    @property
    def replica_sets(self) -> list[ReplicaSet]:
        return list(self._sets)

    @property
    def _procs(self) -> list:
        """Every worker process, grouped by shard then replica slot.

        With ``replicas=1`` this is the historical one-process-per-shard
        list (indexable by shard). Retired replicas stay at their slot
        until :meth:`restart_dead` replaces them, so a just-killed worker
        remains joinable here.
        """
        return [r.proc for s in self._sets for r in s.replicas]

    @property
    def n_workers(self) -> int:
        return len(self._procs)

    def worker_pids(self) -> list[int]:
        return [p.pid for p in self._procs if p.pid is not None]

    def transport_stats(self) -> dict:
        """Parent-side pipe traffic counters (the ``metrics`` report's
        ``transport`` section)."""
        stats = self._pipe_stats.snapshot()
        return {"n_workers": self.n_workers, **stats}

    # -------------------------------------------------------------- scatter
    def _scatter_gather(self, messages: dict[int, tuple]) -> list:
        """Send ``{shard: message}``, then collect one reply per shard sent.

        Each target shard checks out ONE live replica (pipe lock held
        until its reply is read). Sends to every target are attempted even
        when an earlier one finds a dead shard, and every checked-out pipe
        is drained even when an early shard reports an error — an unread
        reply left in a pipe would be mistaken for the answer to the
        *next* request. A replica that dies mid-request is retired and its
        shard's request is retried on a live sibling — *after* the main
        gather, when this thread holds no other pipe locks. All failures
        (send, execution, exhausted replicas) surface as one
        :class:`ShardExecutionError` after the drain.

        Thread safety: checkouts happen in ascending shard order, one
        replica lock per shard; every wait is therefore for a
        greater-or-equal shard than anything held, so concurrent requests
        cannot deadlock. Two requests touching disjoint shard sets — the
        common case once the planner prunes kNN fan-out — run fully in
        parallel; with R > 1, requests sharing a shard overlap across its
        idle siblings too.
        """
        errors: list[str] = []
        # Serialize each distinct message object once: a broadcast hands
        # every shard the SAME payload object, so K sends cost one
        # serialization instead of K. Numpy payloads travel as raw
        # out-of-band frames (see the replication codec).
        framed: dict[int, object] = {}
        checked_out: list[tuple[int, ReplicaSet, object]] = []
        for shard_idx in sorted(messages):
            message = messages[shard_idx]
            key = id(message)
            if key not in framed:
                try:
                    framed[key] = _dump_message(message)
                except Exception as exc:
                    # An unpicklable payload (e.g. a lambda measure):
                    # serialization completes before any frame is written,
                    # so the failure is reportable per shard with every
                    # pipe left clean.
                    framed[key] = exc
            frames = framed[key]
            if isinstance(frames, Exception):
                errors.append(
                    f"shard {shard_idx}: send failed "
                    f"({type(frames).__name__}: {frames})"
                )
                continue
            replica = self._sets[shard_idx].checkout_and_send(frames)
            if replica is None:
                errors.append(
                    f"shard {shard_idx}: worker died mid-request and no "
                    f"live replica remains"
                )
                continue
            checked_out.append((shard_idx, self._sets[shard_idx], replica))
        ctx = self.trace_context
        tracer, trace_id = ctx if ctx else (None, None)
        gather_start = time.perf_counter()
        replies: dict[int, tuple] = {}
        needs_retry: list[int] = []
        while checked_out:
            shard_idx, replica_set, replica = checked_out.pop(0)
            try:
                replies[shard_idx] = replica_set.receive(replica)
            except ReplicaGone:
                needs_retry.append(shard_idx)
                continue
            except BaseException:
                # Interrupted mid-gather (KeyboardInterrupt, a damaged fd,
                # an unpicklable reply): receive() already retired the
                # replica it was reading; the remaining checkouts hold
                # pipes with undrained replies — abandon them so their
                # siblings (and restarts) keep the executor usable.
                for _, later_set, later in checked_out:
                    later_set.abandon(later)
                raise
            if tracer is not None:
                # Per-shard gather wait: time from gather start until this
                # shard's reply was fully read (workers overlap, so waits
                # are cumulative along the gather order, not per-shard
                # compute times).
                tracer.record(
                    trace_id,
                    "shard_gather",
                    time.perf_counter() - gather_start,
                    shard=shard_idx,
                    op=messages[shard_idx][0],
                )
        # Deferred failover: retry dead-mid-request shards on live
        # siblings now that no other pipe lock is held.
        for shard_idx in needs_retry:
            try:
                replies[shard_idx] = self._sets[shard_idx].request(
                    framed[id(messages[shard_idx])]
                )
            except ShardExecutionError as exc:
                errors.append(str(exc))
        errors.extend(
            f"shard {idx}: {value}"
            for idx, (status, value) in replies.items()
            if status != "ok"
        )
        if errors:
            raise ShardExecutionError("; ".join(errors))
        return [replies[idx][1] for idx in sorted(replies)]

    def _check_usable(self) -> None:
        if self._closed:
            raise ShardExecutionError("executor is closed")

    def broadcast(self, op: str, payload: dict) -> list:
        self._check_usable()
        # Scatter every request before gathering any reply: all shard
        # workers compute concurrently while the parent waits. One shared
        # message object, so _scatter_gather's pickle-once cache applies.
        message = (op, payload)
        return self._scatter_gather(
            {idx: message for idx in range(len(self._sets))}
        )

    def run_on(self, shard_indices, op: str, payload: dict) -> dict[int, object]:
        """Run ``op`` on the given shards only; ``{shard: result}``.

        Same scatter-all-then-gather overlap as :meth:`broadcast`, but
        pruned shards are never messaged at all — their workers stay free
        for other requests.
        """
        self._check_usable()
        indices = sorted({int(i) for i in shard_indices})
        message = (op, payload)
        results = self._scatter_gather({idx: message for idx in indices})
        return dict(zip(indices, results))

    # --------------------------------------------------------------- ingest
    def ingest(self, routed: dict[int, list]) -> list:
        """Deliver routed batches; every live replica of a target shard
        gets its own copy (see :meth:`ReplicaSet.ingest_send` for why
        ingest is replicated rather than failed over)."""
        self._check_usable()
        order = sorted(routed)
        framed = {
            idx: _dump_message(("ingest", routed[idx])) for idx in order
        }
        sent: dict[int, list] = {}
        results: list = []
        errors: list[str] = []
        try:
            for idx in order:
                sent[idx] = self._sets[idx].ingest_send(framed[idx], routed[idx])
            for idx in order:
                replicas = sent.pop(idx)
                try:
                    results.append(
                        self._sets[idx].ingest_gather(replicas, routed[idx])
                    )
                except ShardExecutionError as exc:
                    errors.append(str(exc))
        except BaseException:
            for idx, replicas in sent.items():
                for replica in replicas:
                    self._sets[idx].abandon(replica)
            raise
        if errors:
            raise ShardExecutionError("; ".join(errors))
        return results

    # --------------------------------------------------- fault tolerance
    def liveness(self) -> dict:
        """Non-blocking health probe: no pipe traffic, just process state.

        Names dead shards (every replica gone) immediately instead of
        waiting for the next scatter to raise; replicas whose process
        silently exited are retired here.
        """
        shards = [replica_set.liveness() for replica_set in self._sets]
        dead_shards = [s["shard"] for s in shards if s["live"] == 0]
        live = sum(s["live"] for s in shards)
        total = sum(s["replicas"] for s in shards)
        with self._registry_lock:
            self._replication_registry.gauge("replication.replicas_live").set(
                live
            )
        return {
            "alive": not self._closed and not dead_shards,
            "dead_shards": dead_shards,
            "replicas_live": live,
            "replicas_total": total,
            "shards": shards,
        }

    def ping(self, deadline: float) -> int:
        """Heartbeat every idle replica; retire any that miss ``deadline``
        (hung-but-alive workers). Returns the number retired."""
        self._check_usable()
        return sum(
            replica_set.ping(deadline) for replica_set in self._sets
        )

    def restart_dead(self) -> int:
        """Respawn every retired replica from its shard's snapshot plus the
        replayed ingest log. Returns the number restarted."""
        self._check_usable()
        restarted = 0
        for replica_set in self._sets:
            restarted += replica_set.restart_dead()
        if restarted:
            self.liveness()  # refresh the replicas_live gauge
        return restarted

    def replication_stats(self) -> dict:
        """Replica topology plus the replication instrument snapshot
        (failovers / restarts / hung replicas / restart latency)."""
        probe = self.liveness()
        with self._registry_lock:
            counters = self._replication_registry.snapshot()
        return {
            "replicas_per_shard": self._replicas,
            "replicas_live": probe["replicas_live"],
            "replicas_total": probe["replicas_total"],
            "dead_shards": probe["dead_shards"],
            "counters": counters,
        }

    def reshard(self, start: int, n_removed: int, shards) -> None:
        """Replace the replica sets of ``[start, start+n_removed)`` after an
        online split/merge.

        Fresh sets spawn from the manager's replacement shards (exported at
        the new epoch) before the old sets are torn down; survivors after
        the splice are renumbered in place — their data, segments, and
        engines are untouched, only the routing label moves. The caller
        (the service) holds the epoch write lock, so no query or ingest
        runs concurrently. Old sets' ingest logs die with them: the new
        epoch's base segments already contain every committed batch.
        """
        self._check_usable()
        if start < 0 or n_removed < 1 or start + n_removed > len(self._sets):
            raise ValueError(
                f"reshard range [{start}, {start + n_removed}) out of bounds "
                f"for {len(self._sets)} shards"
            )
        fresh: list[ReplicaSet] = []
        try:
            for shard in shards:
                fresh.append(self._make_set(shard))
        except BaseException:
            for replica_set in fresh:
                replica_set.close()
            raise
        old = self._sets[start : start + n_removed]
        self._sets[start : start + n_removed] = fresh
        for pos, replica_set in enumerate(self._sets):
            if replica_set.shard_index != pos:
                replica_set.renumber(pos)
        for replica_set in old:
            replica_set.close()
        self.liveness()  # refresh the replicas_live gauge

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for replica_set in self._sets:
            replica_set.close()

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup if close() was missed
        try:
            self.close()
        except Exception:  # pragma: no cover
            pass


def make_executor(kind, shards: Iterable[Shard | ShardSnapshot], **kwargs):
    """Build an executor from a name (``"serial"``/``"process"``) or class."""
    if kind == "serial":
        kwargs.pop("mp_context", None)
        return SerialShardExecutor(shards, **kwargs)
    if kind == "process":
        return ProcessShardExecutor(shards, **kwargs)
    if callable(kind):
        return kind(shards, **kwargs)
    raise ValueError(f"unknown executor {kind!r}; choose from {EXECUTORS}")
