"""Scatter/gather executors fanning service operations across shards.

Two interchangeable implementations of one small contract:

* ``broadcast(op, payload)`` — run one operation on every shard, returning
  the per-shard results in shard order;
* ``run_on(shard_indices, op, payload)`` — run one operation on a *subset*
  of shards only, returning ``{shard: result}`` (the primitive behind the
  service's kNN shard skipping: pruned shards are simply never messaged);
* ``ingest(routed)``        — deliver routed ``{shard: batch}`` deltas,
  returning each messaged shard's drained compaction counters (in shard
  order) so the service's stats see policy passes triggered worker-side;
* ``close()``               — release workers (idempotent).

:class:`SerialShardExecutor` is the in-process reference: shards execute
one after another, so it adds no parallelism but also no serialization
cost — and it is the oracle the process executor is tested against.

:class:`ProcessShardExecutor` starts one long-lived worker process per
shard. Each worker materializes its :class:`~repro.service.runtime.ShardRuntime`
once from the shard snapshot — for a columnar
:class:`~repro.service.sharding.ShardSnapshot` backed by the
shared-memory store this *maps* the base tier instead of unpickling it —
and keeps it warm across requests (CSR layout, engine memo, pending
tier), communicating over a dedicated pipe. Messages travel as pickle-5
frames with numpy payloads shipped out-of-band (see the codec below). A
broadcast writes all requests before reading any reply, so shards
genuinely overlap; ingest messages target only the shards that received
rows. Workers die with the executor (daemon processes + explicit stop).
"""

from __future__ import annotations

import io
import multiprocessing
import os
import pickle
import struct
import threading
import time
from typing import Iterable

import numpy as np

from repro.service.runtime import ShardRuntime
from repro.service.sharding import Shard, ShardSnapshot

EXECUTORS = ("serial", "process")


class ShardExecutionError(RuntimeError):
    """A shard worker failed to execute an operation."""


# ---------------------------------------------------------------------------
# Pipe message codec: pickle-5 with numpy payloads as raw out-of-band frames
# ---------------------------------------------------------------------------
#
# ``Connection.send`` pickles numpy arrays *in-band*: the array bytes are
# copied into the pickle stream on send and copied again out of it on load.
# The codec below pickles every message at protocol 5 with a reducer that
# turns large contiguous arrays into ``PickleBuffer`` references, then ships
# each buffer as its own raw pipe frame — the send side writes straight from
# the array's memory, and the load side wraps the received frame with
# ``np.frombuffer`` (no second copy). Message layout on the wire:
#
#     frame 0:   4-byte big-endian buffer count || pickle bytes
#     frame 1..: one raw frame per out-of-band array buffer
#
# Serialization completes before any frame is written, so an unpicklable
# payload still leaves the pipe clean (same property Connection.send had).

#: Arrays at or below this many bytes stay in-band: a dedicated pipe frame
#: costs more than it saves for tiny arrays.
_INLINE_LIMIT = 2048


def _restore_array(buffer, dtype: str, shape: tuple) -> np.ndarray:
    """Rebuild an out-of-band array (read-only, zero-copy over the frame)."""
    return np.frombuffer(buffer, dtype=dtype).reshape(shape)


class _FramePickler(pickle.Pickler):
    def reducer_override(self, obj):
        if (
            type(obj) is np.ndarray
            and obj.dtype.kind in "biufc"
            and obj.flags.c_contiguous
            and obj.nbytes > _INLINE_LIMIT
        ):
            return (
                _restore_array,
                (pickle.PickleBuffer(obj), obj.dtype.str, obj.shape),
            )
        return NotImplemented


def _dump_message(message) -> list:
    """Serialize one message into its list of pipe frames."""
    buffers: list[pickle.PickleBuffer] = []
    head = io.BytesIO()
    _FramePickler(head, protocol=5, buffer_callback=buffers.append).dump(message)
    frames: list = [struct.pack(">I", len(buffers)) + head.getvalue()]
    frames.extend(buf.raw() for buf in buffers)
    return frames


def _send_frames(conn, frames) -> None:
    for frame in frames:
        conn.send_bytes(frame)


def _send_message(conn, message) -> None:
    _send_frames(conn, _dump_message(message))


def _recv_frames(conn) -> tuple[bytes, list[bytes]]:
    """Read one message's raw frames (head + out-of-band buffers)."""
    head = conn.recv_bytes()
    (n_buffers,) = struct.unpack_from(">I", head)
    buffers = [conn.recv_bytes() for _ in range(n_buffers)]
    return head, buffers


def _load_message(head: bytes, buffers: list[bytes]):
    return pickle.loads(memoryview(head)[4:], buffers=buffers)


def _recv_message(conn):
    head, buffers = _recv_frames(conn)
    return _load_message(head, buffers)


class _TraceContextProperty:
    """Thread-local ``trace_context`` descriptor shared by both executors.

    The service sets the ambient ``(tracer, trace_id)`` around each scatter
    call. With the server's worker pool, many requests run through ONE
    executor concurrently, so the context must be per-thread: a plain
    attribute would let request A's trace id label request B's shard spans.
    Kept as an attribute-shaped API (get/set ``executor.trace_context``)
    so executor implementations that predate tracing — including custom
    ones — keep working unchanged.
    """

    def __set_name__(self, owner, name):
        self._slot = f"_{name}_local"

    def _local(self, instance) -> threading.local:
        local = instance.__dict__.get(self._slot)
        if local is None:
            local = threading.local()
            instance.__dict__[self._slot] = local
        return local

    def __get__(self, instance, owner=None):
        if instance is None:
            return self
        return getattr(self._local(instance), "ctx", None)

    def __set__(self, instance, value):
        self._local(instance).ctx = value


class SerialShardExecutor:
    """In-process reference executor: shards run sequentially.

    Thread safety: each shard runtime is guarded by its own lock, so
    concurrent requests from the server's worker pool serialize *per
    shard* while still overlapping across shards (and overlapping all
    pure-python bookkeeping). Single-threaded callers never contend.
    """

    name = "serial"
    #: Ambient per-thread ``(tracer, trace_id)`` set by the service around
    #: scatter calls (None when the current request is untraced).
    trace_context = _TraceContextProperty()

    def __init__(
        self, shards: Iterable[Shard | ShardSnapshot], **runtime_kwargs
    ) -> None:
        self._closed = False
        self.runtimes = [ShardRuntime(s, **runtime_kwargs) for s in shards]
        self._locks = [threading.Lock() for _ in self.runtimes]

    def _check_usable(self) -> None:
        # Same use-after-close contract as ProcessShardExecutor: a closed
        # executor must never silently answer (transport-swap tests would
        # otherwise pass through it).
        if self._closed:
            raise ShardExecutionError("executor is closed")

    def _execute_traced(self, shard_idx: int, op: str, payload: dict):
        ctx = self.trace_context
        if not ctx or ctx[1] is None:
            with self._locks[shard_idx]:
                return self.runtimes[shard_idx].execute(op, payload)
        tracer, trace_id = ctx
        start = time.perf_counter()
        with self._locks[shard_idx]:
            result = self.runtimes[shard_idx].execute(op, payload)
        tracer.record(
            trace_id,
            "shard_exec",
            time.perf_counter() - start,
            shard=shard_idx,
            op=op,
        )
        return result

    def broadcast(self, op: str, payload: dict) -> list:
        self._check_usable()
        return [
            self._execute_traced(i, op, payload)
            for i in range(len(self.runtimes))
        ]

    def run_on(self, shard_indices, op: str, payload: dict) -> dict[int, object]:
        """Run ``op`` on the given shards only; ``{shard: result}``."""
        self._check_usable()
        return {
            int(i): self._execute_traced(int(i), op, payload)
            for i in shard_indices
        }

    def _ingest_one(self, shard_idx: int, batch) -> object:
        with self._locks[shard_idx]:
            return self.runtimes[shard_idx].ingest(batch)

    def ingest(self, routed: dict[int, list]) -> list:
        self._check_usable()
        return [
            self._ingest_one(shard_idx, routed[shard_idx])
            for shard_idx in sorted(routed)
        ]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for shard_idx, runtime in enumerate(self.runtimes):
            with self._locks[shard_idx]:
                runtime.close()

    def __enter__(self) -> "SerialShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _shard_worker_main(conn, shard: Shard | ShardSnapshot, runtime_kwargs: dict) -> None:
    """Worker-process loop: build the runtime once, serve ops until stopped.

    With a :class:`~repro.service.sharding.ShardSnapshot` the runtime
    construction *maps* the shard's base tier from its shared segments —
    the worker never unpickles point data at startup. The ``finally`` runs
    :meth:`ShardRuntime.close` so worker-published compaction segments are
    unlinked on every orderly exit path (stop message, EOF, exception).
    """
    runtime = ShardRuntime(shard, **runtime_kwargs)
    try:
        while True:
            try:
                op, payload = _recv_message(conn)
            except (EOFError, KeyboardInterrupt):
                break
            if op == "stop":
                break
            try:
                if op == "ingest":
                    _send_message(conn, ("ok", runtime.ingest(payload)))
                else:
                    _send_message(conn, ("ok", runtime.execute(op, payload)))
            except Exception as exc:  # surface shard-side failures to the parent
                _send_message(conn, ("error", f"{type(exc).__name__}: {exc}"))
    finally:
        try:
            runtime.close()
        finally:
            conn.close()


class ProcessShardExecutor:
    """One worker process per shard, scatter/gather over pipes.

    ``mp_context`` selects the multiprocessing start method; the default
    honours the ``REPRO_MP_CONTEXT`` environment variable (CI runs the
    service suite under ``spawn``, which fork would otherwise mask
    pickling and shm-lifecycle bugs from), then prefers ``fork`` (workers
    inherit the parent's modules instantly) and falls back to the platform
    default where fork is unavailable.
    """

    name = "process"
    #: Ambient per-thread ``(tracer, trace_id)`` — see
    #: :attr:`SerialShardExecutor.trace_context`.
    trace_context = _TraceContextProperty()

    def __init__(
        self,
        shards: Iterable[Shard | ShardSnapshot],
        mp_context: str | None = None,
        **runtime_kwargs,
    ) -> None:
        if mp_context is None:
            mp_context = os.environ.get("REPRO_MP_CONTEXT") or None
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else methods[0]
        ctx = multiprocessing.get_context(mp_context)
        self._conns = []
        self._locks: list[threading.Lock] = []
        self._stats_lock = threading.Lock()
        self._procs = []
        self._closed = False
        self._broken = False
        # Parent-side pipe accounting (scatter/gather traffic only; the
        # stop handshake at close is not counted).
        self._bytes_sent = 0
        self._bytes_received = 0
        self._messages_sent = 0
        self._messages_received = 0
        try:
            for shard in shards:
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker_main,
                    args=(child_conn, shard, runtime_kwargs),
                    daemon=True,
                    name=f"repro-shard-{shard.index}",
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._locks.append(threading.Lock())
                self._procs.append(proc)
        except Exception:
            self.close()
            raise

    @property
    def n_workers(self) -> int:
        return len(self._procs)

    def worker_pids(self) -> list[int]:
        return [p.pid for p in self._procs if p.pid is not None]

    def transport_stats(self) -> dict:
        """Parent-side pipe traffic counters (the ``metrics`` report's
        ``transport`` section)."""
        with self._stats_lock:
            return {
                "n_workers": self.n_workers,
                "pipe_bytes_sent": self._bytes_sent,
                "pipe_bytes_received": self._bytes_received,
                "messages_sent": self._messages_sent,
                "messages_received": self._messages_received,
            }

    def _scatter_gather(self, messages: dict[int, tuple]) -> list:
        """Send ``{shard: message}``, then collect one reply per shard sent.

        Sends to every target are attempted even when an earlier one hits a
        dead worker, and every successfully-messaged pipe is drained even
        when an early shard reports an error — an unsent request would make
        the later gather read a stale reply, and an unread reply left in a
        pipe would be mistaken for the answer to the *next* request. All
        failures (send and execution) surface as one
        :class:`ShardExecutionError` after the drain.

        Thread safety: the locks of every *target* shard's pipe are held
        in ascending shard order for the whole scatter+gather (ascending
        everywhere ⇒ no lock-order deadlock between concurrent requests).
        Two requests touching disjoint shard sets — the common case once
        the planner prunes kNN fan-out — run fully in parallel; requests
        sharing a shard serialize on it, which is exactly the pipe's
        one-outstanding-request protocol.
        """
        targets = sorted(messages)
        for shard_idx in targets:
            self._locks[shard_idx].acquire()
        try:
            return self._scatter_gather_locked(messages)
        finally:
            for shard_idx in targets:
                self._locks[shard_idx].release()

    def _scatter_gather_locked(self, messages: dict[int, tuple]) -> list:
        errors: list[str] = []
        sent: list[int] = []
        # Serialize each distinct message object once: a broadcast hands
        # every shard the SAME payload object, so K sends cost one
        # serialization instead of K. Numpy payloads travel as raw
        # out-of-band frames (see the codec above), written straight from
        # the arrays' memory.
        framed: dict[int, list] = {}
        for shard_idx in sorted(messages):
            message = messages[shard_idx]
            try:
                frames = framed.get(id(message))
                if frames is None:
                    frames = _dump_message(message)
                    framed[id(message)] = frames
                _send_frames(self._conns[shard_idx], frames)
                with self._stats_lock:
                    self._bytes_sent += sum(len(f) for f in frames)
                    self._messages_sent += 1
                sent.append(shard_idx)
            except Exception as exc:
                # Dead worker (BrokenPipeError/OSError) or an unpicklable
                # payload (e.g. a lambda measure): serialization completes
                # before any frame is written, so a failed send leaves the
                # pipe clean and the error is reportable per shard.
                errors.append(
                    f"shard {shard_idx}: send failed "
                    f"({type(exc).__name__}: {exc})"
                )
        ctx = self.trace_context
        tracer, trace_id = ctx if ctx else (None, None)
        gather_start = time.perf_counter()
        replies = {}
        for shard_idx in sent:
            try:
                head, buffers = _recv_frames(self._conns[shard_idx])
                with self._stats_lock:
                    self._bytes_received += len(head) + sum(
                        len(b) for b in buffers
                    )
                    self._messages_received += 1
                replies[shard_idx] = _load_message(head, buffers)
            except EOFError:
                replies[shard_idx] = ("error", "worker died mid-request")
            except BaseException:
                # Interrupted mid-gather (KeyboardInterrupt, a damaged fd,
                # an unpicklable reply): later shards' replies are still
                # queued in their pipes and would be misread as the answers
                # to the NEXT request — poison the executor before
                # propagating.
                self._broken = True
                raise
            if tracer is not None:
                # Per-shard gather wait: time from gather start until this
                # shard's reply was fully read (workers overlap, so waits
                # are cumulative along the gather order, not per-shard
                # compute times).
                tracer.record(
                    trace_id,
                    "shard_gather",
                    time.perf_counter() - gather_start,
                    shard=shard_idx,
                    op=messages[shard_idx][0],
                )
        errors.extend(
            f"shard {idx}: {value}"
            for idx, (status, value) in replies.items()
            if status != "ok"
        )
        if errors:
            raise ShardExecutionError("; ".join(errors))
        return [replies[idx][1] for idx in sorted(replies)]

    def _check_usable(self) -> None:
        if self._closed:
            raise ShardExecutionError("executor is closed")
        if self._broken:
            raise ShardExecutionError(
                "executor was interrupted mid-gather; worker pipes may hold "
                "stale replies — rebuild the service"
            )

    def broadcast(self, op: str, payload: dict) -> list:
        self._check_usable()
        # Scatter every request before gathering any reply: all shard
        # workers compute concurrently while the parent waits. One shared
        # message object, so _scatter_gather's pickle-once cache applies.
        message = (op, payload)
        return self._scatter_gather(
            {idx: message for idx in range(len(self._conns))}
        )

    def run_on(self, shard_indices, op: str, payload: dict) -> dict[int, object]:
        """Run ``op`` on the given shards only; ``{shard: result}``.

        Same scatter-all-then-gather overlap as :meth:`broadcast`, but
        pruned shards are never messaged at all — their workers stay free
        for other requests.
        """
        self._check_usable()
        indices = sorted({int(i) for i in shard_indices})
        message = (op, payload)
        results = self._scatter_gather({idx: message for idx in indices})
        return dict(zip(indices, results))

    def ingest(self, routed: dict[int, list]) -> list:
        self._check_usable()
        return self._scatter_gather(
            {idx: ("ingest", batch) for idx, batch in routed.items()}
        )

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for lock, conn in zip(self._locks, self._conns):
            with lock:
                try:
                    _send_message(conn, ("stop", None))
                except (BrokenPipeError, OSError):
                    pass
        for lock, conn in zip(self._locks, self._conns):
            with lock:
                try:
                    conn.close()
                except OSError:
                    pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker safety net
                proc.terminate()
                proc.join(timeout=1.0)

    def __enter__(self) -> "ProcessShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort cleanup if close() was missed
        try:
            self.close()
        except Exception:  # pragma: no cover
            pass


def make_executor(kind, shards: Iterable[Shard | ShardSnapshot], **kwargs):
    """Build an executor from a name (``"serial"``/``"process"``) or class."""
    if kind == "serial":
        kwargs.pop("mp_context", None)
        return SerialShardExecutor(shards, **kwargs)
    if kind == "process":
        return ProcessShardExecutor(shards, **kwargs)
    if callable(kind):
        return kind(shards, **kwargs)
    raise ValueError(f"unknown executor {kind!r}; choose from {EXECUTORS}")
