"""Warn-once bookkeeping for deprecated entry points.

The old kwargs-style surfaces (``QueryService.range/knn/...``, the
harness's ``service=`` parameter) keep working through the unified
:mod:`repro.client` API, but each warns exactly once per process so logs
flag the migration without drowning batch workloads in repeats.
"""

from __future__ import annotations

import warnings

_FIRED: set[str] = set()


def warn_once(entry_point: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` the first time ``entry_point`` is hit."""
    if entry_point in _FIRED:
        return
    _FIRED.add(entry_point)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_fired() -> None:
    """Forget which warnings fired (test hook)."""
    _FIRED.clear()
