"""Per-shard replica groups: failover routing and restart-with-replay.

This is the fault-tolerance core of the sharded service. A
:class:`ReplicaSet` owns R worker processes for ONE shard, all built from
the same :class:`~repro.service.sharding.ShardSnapshot` — under the
shared-memory store every replica *maps* the shard's base segments
zero-copy, so an extra replica costs pipes and pending-tier heap, not a
second copy of the data. The set provides:

* **query routing with failover** — each query checks out one live
  replica (round-robin, preferring idle pipes); a worker that dies
  mid-request is retired and the request retries on a live sibling.
  Query operations are read-only, so a retry can never double-apply;
* **replicated ingest, never retried** — an ingest batch is logged
  parent-side and written to EVERY live replica under the set lock (one
  global arrival order, so replicas compact identically). A replica that
  fails its copy is retired — a sibling retry would have nothing to
  repair, the sibling already holds its own copy;
* **restart with replay** — a retired replica respawns from the shard's
  original base snapshot plus the replayed ingest log, catching up on
  batches that arrived mid-spawn before it rejoins the rotation. Spawn
  and replay happen outside the set lock, so queries keep flowing to
  live siblings during the restart window;
* **liveness** — a non-blocking :meth:`~ReplicaSet.liveness` probe
  (``Process.is_alive``, no pipe traffic) and a :meth:`~ReplicaSet.ping`
  heartbeat with a deadline that catches hung-but-alive workers.

Deadlock discipline: a request holds at most ONE replica pipe lock per
shard and acquires shards in ascending order (the executor's scatter
order); within a shard, siblings are tried one at a time, never held
together — except by ingest, which holds the set lock first, and set
locks are themselves acquired in ascending shard order. Every wait is
therefore for a strictly greater (shard, resource) pair than anything
held, so no cycle can form. Failover retries for shards that failed
mid-gather are *deferred* until the main gather released every pipe.

Failover/restart/liveness counters export through a shared
:class:`~repro.obs.metrics.MetricsRegistry`
(``replication.failovers``, ``replication.restarts``,
``replication.restart_latency_s``, ``replication.replicas_live``,
``replication.hung_replicas``), surfaced by the service's
``metrics_report()`` replication section.

The pipe codec (pickle-5 frames, large numpy arrays as raw out-of-band
frames) and the worker main loop live here; ``executors.py`` re-exports
them under their historical names.
"""

from __future__ import annotations

import io
import pickle
import struct
import threading
import time
from typing import Callable

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.service.runtime import ShardRuntime
from repro.service.sharding import Shard, ShardSnapshot


class ShardExecutionError(RuntimeError):
    """A shard worker failed to execute an operation."""


class ReplicaGone(Exception):
    """Internal signal: the checked-out replica died mid-request.

    Raised by :meth:`ReplicaSet.receive` after the replica has been
    retired; callers fail the shard over to a sibling (queries) or drop
    the replica's ack (ingest). Never escapes the executor layer.
    """


# ---------------------------------------------------------------------------
# Pipe message codec: pickle-5 with numpy payloads as raw out-of-band frames
# ---------------------------------------------------------------------------
#
# ``Connection.send`` pickles numpy arrays *in-band*: the array bytes are
# copied into the pickle stream on send and copied again out of it on load.
# The codec below pickles every message at protocol 5 with a reducer that
# turns large contiguous arrays into ``PickleBuffer`` references, then ships
# each buffer as its own raw pipe frame — the send side writes straight from
# the array's memory, and the load side wraps the received frame with
# ``np.frombuffer`` (no second copy). Message layout on the wire:
#
#     frame 0:   4-byte big-endian buffer count || pickle bytes
#     frame 1..: one raw frame per out-of-band array buffer
#
# Serialization completes before any frame is written, so an unpicklable
# payload still leaves the pipe clean (same property Connection.send had).

#: Arrays at or below this many bytes stay in-band: a dedicated pipe frame
#: costs more than it saves for tiny arrays.
_INLINE_LIMIT = 2048


def _restore_array(buffer, dtype: str, shape: tuple) -> np.ndarray:
    """Rebuild an out-of-band array (read-only, zero-copy over the frame)."""
    return np.frombuffer(buffer, dtype=dtype).reshape(shape)


class _FramePickler(pickle.Pickler):
    def reducer_override(self, obj):
        if (
            type(obj) is np.ndarray
            and obj.dtype.kind in "biufc"
            and obj.flags.c_contiguous
            and obj.nbytes > _INLINE_LIMIT
        ):
            return (
                _restore_array,
                (pickle.PickleBuffer(obj), obj.dtype.str, obj.shape),
            )
        return NotImplemented


def _dump_message(message) -> list:
    """Serialize one message into its list of pipe frames."""
    buffers: list[pickle.PickleBuffer] = []
    head = io.BytesIO()
    _FramePickler(head, protocol=5, buffer_callback=buffers.append).dump(message)
    frames: list = [struct.pack(">I", len(buffers)) + head.getvalue()]
    frames.extend(buf.raw() for buf in buffers)
    return frames


def _send_frames(conn, frames) -> None:
    for frame in frames:
        conn.send_bytes(frame)


def _send_message(conn, message) -> None:
    _send_frames(conn, _dump_message(message))


def _recv_frames(conn) -> tuple[bytes, list[bytes]]:
    """Read one message's raw frames (head + out-of-band buffers)."""
    head = conn.recv_bytes()
    (n_buffers,) = struct.unpack_from(">I", head)
    buffers = [conn.recv_bytes() for _ in range(n_buffers)]
    return head, buffers


def _load_message(head: bytes, buffers: list[bytes]):
    return pickle.loads(memoryview(head)[4:], buffers=buffers)


def _recv_message(conn):
    head, buffers = _recv_frames(conn)
    return _load_message(head, buffers)


def _shard_worker_main(
    conn,
    shard: Shard | ShardSnapshot,
    runtime_kwargs: dict,
    replay: list | None = None,
) -> None:
    """Worker-process loop: build the runtime once, serve ops until stopped.

    With a :class:`~repro.service.sharding.ShardSnapshot` the runtime
    construction *maps* the shard's base tier from its shared segments —
    the worker never unpickles point data at startup. ``replay`` (a
    restarted replica's logged ingest batches) is applied before the first
    request is read off the pipe, so the pipe's FIFO order guarantees no
    query ever observes a half-caught-up replica. The ``finally`` runs
    :meth:`ShardRuntime.close` so worker-published compaction segments are
    unlinked on every orderly exit path (stop message, EOF, exception).
    """
    runtime = ShardRuntime(shard, **runtime_kwargs)
    try:
        if replay:
            runtime.replay(replay)
        while True:
            try:
                op, payload = _recv_message(conn)
            except (EOFError, KeyboardInterrupt):
                break
            if op == "stop":
                break
            try:
                if op == "ingest":
                    _send_message(conn, ("ok", runtime.ingest(payload)))
                else:
                    _send_message(conn, ("ok", runtime.execute(op, payload)))
            except Exception as exc:  # surface shard-side failures to the parent
                _send_message(conn, ("error", f"{type(exc).__name__}: {exc}"))
    finally:
        try:
            runtime.close()
        finally:
            conn.close()


class PipeStats:
    """Thread-safe parent-side pipe traffic counters.

    One instance is shared by every replica set of an executor so the
    ``transport`` metrics section keeps meaning "this executor's pipe
    traffic" regardless of replica count or failover routing.
    """

    __slots__ = (
        "_lock",
        "bytes_sent",
        "bytes_received",
        "messages_sent",
        "messages_received",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    def count_sent(self, frames) -> None:
        n = sum(len(f) for f in frames)
        with self._lock:
            self.bytes_sent += n
            self.messages_sent += 1

    def count_received(self, head, buffers) -> None:
        n = len(head) + sum(len(b) for b in buffers)
        with self._lock:
            self.bytes_received += n
            self.messages_received += 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "pipe_bytes_sent": self.bytes_sent,
                "pipe_bytes_received": self.bytes_received,
                "messages_sent": self.messages_sent,
                "messages_received": self.messages_received,
            }


class _Replica:
    """One worker process and its pipe.

    ``lock`` serializes the pipe's one-outstanding-request protocol;
    ``live`` flips to False exactly once (under the owning set's lock)
    when the replica is retired — a retired replica's pipe is never
    reused, which is what makes mid-request death recoverable without
    stale-reply hazards.
    """

    __slots__ = ("proc", "conn", "lock", "live", "spawn_id")

    def __init__(self, proc, conn, spawn_id: int) -> None:
        self.proc = proc
        self.conn = conn
        self.lock = threading.Lock()
        self.live = True
        self.spawn_id = spawn_id


class ReplicaSet:
    """R replicated workers for one shard (see the module docstring).

    Parameters
    ----------
    snapshot:
        The shard's membership snapshot; every replica (including
        restarts) is built from it, so it must stay resolvable for the
        set's lifetime (the service keeps the exporting store open).
    ctx:
        Multiprocessing context workers spawn under.
    runtime_kwargs:
        Forwarded to each worker's :class:`~repro.service.runtime.ShardRuntime`.
    replicas:
        Worker count (R >= 1).
    pipe_stats, registry, registry_lock:
        Shared accounting: pipe traffic counters and the replication
        metrics registry (with the lock guarding its not-thread-safe
        instruments). Both optional for standalone use.
    next_tag:
        Allocator of store sub-family tags, one per spawn. Must yield
        names unique across the owning executor's lifetime: two live
        replicas (or a restart racing its predecessor's orphaned
        segments) publishing under one tag would collide on epoch
        segment names.
    """

    def __init__(
        self,
        snapshot: Shard | ShardSnapshot,
        *,
        ctx,
        runtime_kwargs: dict,
        replicas: int = 1,
        pipe_stats: PipeStats | None = None,
        registry: MetricsRegistry | None = None,
        registry_lock: threading.Lock | None = None,
        next_tag: Callable[[], str] | None = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.snapshot = snapshot
        self.shard_index = snapshot.index
        self._ctx = ctx
        self._runtime_kwargs = dict(runtime_kwargs)
        self._pipe_stats = pipe_stats if pipe_stats is not None else PipeStats()
        self._registry = registry
        self._registry_lock = registry_lock or threading.Lock()
        self._spawned = 0
        if next_tag is None:
            next_tag = lambda: f"s{self.snapshot.index}r{self._spawned}"  # noqa: E731
        self._next_tag = next_tag
        #: Guards membership (``replicas``/``live`` flips), the ingest log,
        #: and the round-robin cursor. RLock: retire() runs under ingest's
        #: hold.
        self._lock = threading.RLock()
        #: Parent-side ingest replay log, in arrival order. Grows for the
        #: set's lifetime (reset only when an online reshard replaces the
        #: set); the batches alias the trajectories the manager already
        #: holds, so the overhead is list structure, not point data.
        self._log: list[list] = []
        self._rr = 0
        self._closed = False
        self.replicas: list[_Replica] = []
        try:
            for _ in range(replicas):
                self.replicas.append(self._spawn())
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------- plumbing
    def _count(self, name: str, amount: int = 1) -> None:
        if self._registry is None:
            return
        with self._registry_lock:
            self._registry.counter(name).inc(amount)

    def _record(self, name: str, value: float) -> None:
        if self._registry is None:
            return
        with self._registry_lock:
            self._registry.histogram(name).record(value)

    def _spawn(self, replay: list | None = None) -> _Replica:
        if self._closed:
            raise ShardExecutionError("replica set is closed")
        spawn_id = self._spawned
        self._spawned += 1
        kwargs = dict(self._runtime_kwargs)
        kwargs["store_tag"] = self._next_tag()
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, self.snapshot, kwargs, replay),
            daemon=True,
            name=f"repro-shard-{self.shard_index}-r{spawn_id}",
        )
        proc.start()
        child_conn.close()
        return _Replica(proc, parent_conn, spawn_id)

    def live_replicas(self) -> list[_Replica]:
        with self._lock:
            return [r for r in self.replicas if r.live]

    def retire(self, replica: _Replica) -> None:
        """Mark a replica dead and reap it (idempotent, non-blocking).

        The pipe is closed only if it can be claimed without waiting — a
        request currently blocked on it will hit EOF and re-enter here;
        the dropped ``_Replica`` object closes the fd on GC as a backstop.
        The process is SIGKILLed: retire also serves the hung-worker path,
        where a polite stop would never be read.
        """
        with self._lock:
            if not replica.live:
                return
            replica.live = False
        if replica.lock.acquire(blocking=False):
            try:
                replica.conn.close()
            except OSError:
                pass
            finally:
                replica.lock.release()
        if replica.proc.is_alive():
            replica.proc.kill()

    # -------------------------------------------------------------- queries
    def checkout_and_send(self, frames) -> _Replica | None:
        """Pick a live replica, lock its pipe, and write one request.

        Prefers an idle sibling (non-blocking probe in round-robin order)
        before blocking on a busy one. A send that hits a dead pipe
        retires the replica and fails over to the next; returns None once
        no live replica remains. On success the replica's pipe lock is
        HELD — the caller must follow with :meth:`receive` (or
        :meth:`abandon` on an abort path).
        """
        while True:
            with self._lock:
                live = [r for r in self.replicas if r.live]
                if not live:
                    return None
                start = self._rr % len(live)
                self._rr += 1
            rotation = live[start:] + live[:start]
            replica = None
            for candidate in rotation:
                if candidate.lock.acquire(blocking=False):
                    replica = candidate
                    break
            if replica is None:
                replica = rotation[0]
                replica.lock.acquire()
            if not replica.live:  # retired while we waited for the pipe
                replica.lock.release()
                continue
            try:
                _send_frames(replica.conn, frames)
                self._pipe_stats.count_sent(frames)
                return replica
            except (ConnectionError, EOFError, OSError):
                replica.lock.release()
                self.retire(replica)
                self._count("replication.failovers")

    def receive(self, replica: _Replica):
        """Read one reply off a checked-out replica, releasing its pipe.

        Raises :class:`ReplicaGone` (after retiring the replica and
        counting the failover) when the worker died mid-request; any other
        interruption mid-read also retires the replica — a half-read pipe
        can never be trusted again — before propagating.
        """
        try:
            head, buffers = _recv_frames(replica.conn)
        except (ConnectionError, EOFError, OSError) as exc:
            replica.lock.release()
            self.retire(replica)
            self._count("replication.failovers")
            raise ReplicaGone(str(exc) or type(exc).__name__) from exc
        except BaseException:
            replica.lock.release()
            self.retire(replica)
            raise
        replica.lock.release()
        self._pipe_stats.count_received(head, buffers)
        # The frames are fully off the pipe: a decode failure here leaves
        # the replica clean and propagates as an ordinary error.
        return _load_message(head, buffers)

    def abandon(self, replica: _Replica) -> None:
        """Abort a checkout whose reply will never be read (interrupted
        gather): the un-drained pipe disqualifies the replica for good."""
        replica.lock.release()
        self.retire(replica)

    def request(self, frames):
        """One request with inline failover: send + gather, retrying on a
        live sibling until one answers. Raises
        :class:`ShardExecutionError` once no live replica remains."""
        while True:
            replica = self.checkout_and_send(frames)
            if replica is None:
                with self._lock:
                    total = len(self.replicas)
                raise ShardExecutionError(
                    f"shard {self.shard_index}: worker died mid-request and "
                    f"no live replica remains (all {total} dead)"
                )
            try:
                return self.receive(replica)
            except ReplicaGone:
                continue

    # --------------------------------------------------------------- ingest
    def ingest_send(self, frames, batch) -> list[_Replica]:
        """Log ``batch`` and write its ingest message to EVERY live replica.

        Ingest is never retried on a sibling: siblings receive their own
        copy right here, so a replica that fails its copy is simply
        retired (its state is missing the batch and can only rejoin
        through restart + replay). The set lock is held across the fan-out
        so concurrent ingests land in one global order on every replica —
        divergent orders would let replicas compact different tiers.
        Returns the checked-out replicas (pipe locks held); gather with
        :meth:`ingest_gather`.
        """
        with self._lock:
            self._log.append(batch)
            sent: list[_Replica] = []
            for replica in [r for r in self.replicas if r.live]:
                replica.lock.acquire()
                if not replica.live:
                    replica.lock.release()
                    continue
                try:
                    _send_frames(replica.conn, frames)
                    self._pipe_stats.count_sent(frames)
                    sent.append(replica)
                except (ConnectionError, EOFError, OSError):
                    replica.lock.release()
                    self.retire(replica)
                    self._count("replication.failovers")
            return sent

    def ingest_gather(self, sent: list[_Replica], batch):
        """Collect ingest acks; returns the FIRST successful reply value.

        One ack stands in for the whole set: every replica runs identical
        compaction passes, so absorbing more than one reply's drained
        counters would multiply the service's compaction stats by R.
        A replica that reports a worker-side error is retired — it may
        have applied the batch partway and can no longer be trusted to
        match its siblings. If NO replica acked, the logged batch is
        rolled back (the manager will not commit it either) and a
        :class:`ShardExecutionError` is raised.
        """
        reply = None
        errors: list[str] = []
        for pos, replica in enumerate(sent):
            try:
                status, value = self.receive(replica)
            except ReplicaGone:
                continue
            except BaseException:
                # receive() already retired ``replica``; the rest of the
                # fan-out still holds pipe locks with undrained replies.
                for later in sent[pos + 1 :]:
                    self.abandon(later)
                raise
            if status == "ok":
                if reply is None:
                    reply = value
            else:
                errors.append(str(value))
                self.retire(replica)
                self._count("replication.failovers")
        if reply is None:
            with self._lock:
                for i in range(len(self._log) - 1, -1, -1):
                    if self._log[i] is batch:
                        del self._log[i]
                        break
            detail = errors[0] if errors else "every replica died mid-ingest"
            raise ShardExecutionError(f"shard {self.shard_index}: {detail}")
        return reply

    # -------------------------------------------------------------- restart
    def restart_dead(self) -> int:
        """Respawn every retired replica from snapshot + replayed log.

        Spawn and replay run OUTSIDE the set lock — queries keep flowing
        to live siblings during the window — then the lock is retaken to
        catch up on batches ingested mid-spawn before the replica goes
        live. Readiness is confirmed with a ping round-trip (the worker
        answers only after its replay finished), so the recorded
        ``restart_latency_s`` covers spawn + replay + first heartbeat.
        Returns the number restarted.
        """
        restarted = 0
        for slot in range(len(self.replicas)):
            with self._lock:
                if self._closed or slot >= len(self.replicas):
                    break
                replica = self.replicas[slot]
                if replica.live:
                    continue
                caught_up = len(self._log)
                replay = list(self._log)
            start = time.perf_counter()
            fresh = self._spawn(replay=replay)
            try:
                with fresh.lock:
                    _send_message(fresh.conn, ("ping", {}))
                    status, _ = _recv_message(fresh.conn)
                if status != "ok":
                    raise ShardExecutionError(
                        f"shard {self.shard_index}: restarted worker failed "
                        f"its readiness ping"
                    )
                with self._lock:
                    # Catch up on ingests that landed while we spawned.
                    while caught_up < len(self._log):
                        with fresh.lock:
                            _send_message(
                                fresh.conn, ("ingest", self._log[caught_up])
                            )
                            status, _ = _recv_message(fresh.conn)
                        if status != "ok":
                            raise ShardExecutionError(
                                f"shard {self.shard_index}: restarted worker "
                                f"failed replay catch-up"
                            )
                        caught_up += 1
                    if (
                        self._closed
                        or slot >= len(self.replicas)
                        or self.replicas[slot] is not replica
                    ):
                        # The set was closed or resharded under us; the
                        # fresh worker has no seat to take.
                        raise ShardExecutionError(
                            f"shard {self.shard_index}: replica set changed "
                            f"during restart"
                        )
                    self.replicas[slot] = fresh
            except BaseException:
                fresh.proc.kill()
                try:
                    fresh.conn.close()
                except OSError:
                    pass
                raise
            restarted += 1
            self._count("replication.restarts")
            self._record(
                "replication.restart_latency_s", time.perf_counter() - start
            )
        return restarted

    # ------------------------------------------------------------- liveness
    def liveness(self) -> dict:
        """Non-blocking probe: replica states via ``Process.is_alive()``.

        No pipe traffic. A replica whose process silently died is retired
        right here — liveness names dead replicas immediately instead of
        on the next scatter's EOF.
        """
        with self._lock:
            replicas = list(self.replicas)
        for replica in replicas:
            if replica.live and not replica.proc.is_alive():
                self.retire(replica)
        live_pids = [r.proc.pid for r in replicas if r.live]
        dead = [slot for slot, r in enumerate(replicas) if not r.live]
        return {
            "shard": self.shard_index,
            "replicas": len(replicas),
            "live": len(replicas) - len(dead),
            "pids": live_pids,
            "dead_replicas": dead,
        }

    def ping(self, deadline: float) -> int:
        """Heartbeat idle live replicas; retire any that miss ``deadline``.

        Catches hung-but-alive workers (``is_alive()`` true, serve loop
        stuck). Replicas busy serving a request are skipped — a held pipe
        lock proves the protocol is mid-flight, and racing the in-flight
        reply would corrupt it. A replica that times out is retired even
        though its pong may arrive later: the pipe now holds (or will
        hold) a reply nobody waits for. Returns the number retired.
        """
        frames = _dump_message(("ping", {}))
        hung = 0
        for replica in self.live_replicas():
            if not replica.lock.acquire(blocking=False):
                continue
            responsive = True
            try:
                if not replica.live:
                    continue
                try:
                    _send_frames(replica.conn, frames)
                    if replica.conn.poll(deadline):
                        _recv_message(replica.conn)  # drain the pong
                    else:
                        responsive = False
                except (ConnectionError, EOFError, OSError):
                    responsive = False
            finally:
                replica.lock.release()
            if not responsive:
                self.retire(replica)
                self._count("replication.hung_replicas")
                hung += 1
        return hung

    # -------------------------------------------------------------- reshard
    def renumber(self, new_index: int) -> None:
        """Relabel this set and its workers after an online split/merge.

        Shards after the surgery point keep their data but shift position
        in the routing table; membership, segments, and engines are
        untouched.
        """
        with self._lock:
            self.shard_index = new_index
            self.snapshot.index = new_index
        frames = _dump_message(("set_index", {"index": int(new_index)}))
        for replica in self.live_replicas():
            replica.lock.acquire()
            if not replica.live:
                replica.lock.release()
                continue
            try:
                _send_frames(replica.conn, frames)
            except (ConnectionError, EOFError, OSError):
                replica.lock.release()
                self.retire(replica)
                self._count("replication.failovers")
                continue
            try:
                status, value = self.receive(replica)
            except ReplicaGone:
                continue
            if status != "ok":
                raise ShardExecutionError(
                    f"shard {new_index}: renumber failed ({value})"
                )

    # ------------------------------------------------------------ lifecycle
    def close(self) -> None:
        """Stop every worker and drop the log (idempotent)."""
        with self._lock:
            self._closed = True
            replicas, self.replicas = self.replicas, []
            self._log = []
        for replica in replicas:
            if not replica.live:
                continue
            with replica.lock:
                try:
                    _send_message(replica.conn, ("stop", None))
                except (ConnectionError, OSError):
                    pass
        for replica in replicas:
            try:
                replica.conn.close()
            except OSError:
                pass
        for replica in replicas:
            replica.proc.join(timeout=5.0)
            if replica.proc.is_alive():  # pragma: no cover - stuck worker
                replica.proc.terminate()
                replica.proc.join(timeout=1.0)


__all__ = [
    "PipeStats",
    "ReplicaGone",
    "ReplicaSet",
    "ShardExecutionError",
]
