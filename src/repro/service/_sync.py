"""Synchronization primitives for the concurrent serving plane.

:class:`RWLock` is the epoch lock of :class:`~repro.service.service.QueryService`:
any number of query requests execute concurrently under the read side,
while ingest (the only path that bumps the shard epoch and rewrites shard
state) takes the write side exclusively — so a read of a given epoch can
never interleave with the write that bumps it, which is the invariant the
``(cache key, epoch)`` LRU and the bit-identity property tests rest on.

The lock is **writer-preferring**: once a writer is waiting, new readers
queue behind it. Under a saturating pipelined query load a fair or
reader-preferring lock would starve ingest indefinitely; preferring
writers bounds ingest latency by the in-flight reads at arrival time.
Both sides are reentrancy-free by design (the service never nests
acquisitions), which keeps the implementation a single condition variable.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

__all__ = ["RWLock"]


class RWLock:
    """A writer-preferring readers/writer lock (see module docstring)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # ------------------------------------------------------------------- read
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # ------------------------------------------------------------------ write
    def acquire_write(self) -> None:
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    def release_write(self) -> None:
        with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
