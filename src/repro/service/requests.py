"""Typed request/response messages of the query service.

Requests are small frozen dataclasses describing one batched operation;
each knows its scatter ``kind`` (which shard-runtime operation serves it),
how to build the scatter ``payload``, and a canonical ``cache_key`` — a
tuple of primitives over the query *values* (box bounds, query-point
digests, scalars), so two requests built from distinct but equal objects
hit the same cache line. The service keys its LRU on
``(cache_key, shard epoch)``: results can only change when the epoch does,
so ingestion invalidates by construction rather than by explicit flush.

Responses carry the merged result plus serving metadata (epoch, latency,
whether the result came from the cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.trajectory import Trajectory
from repro.queries.engine import array_digest


def _boxes_of(queries) -> tuple[BoundingBox, ...]:
    """Normalize a workload / RangeQuery list / BoundingBox list to boxes."""
    return tuple(q.box if hasattr(q, "box") else q for q in queries)


def _bounds_key(boxes: tuple[BoundingBox, ...]) -> bytes:
    if not boxes:
        return b""
    lo = np.array([[b.xmin, b.ymin, b.tmin] for b in boxes])
    hi = np.array([[b.xmax, b.ymax, b.tmax] for b in boxes])
    return lo.tobytes() + hi.tobytes()

def _queries_key(
    queries: tuple[Trajectory, ...],
    windows,
) -> tuple:
    digests = tuple(array_digest(q.points) for q in queries)
    if windows is None:
        return (digests, None)
    # Deep-convert: windows commonly arrive as lists (e.g. JSON-decoded),
    # which are unhashable and would crash the cache lookup.
    return (
        digests,
        tuple(
            None if w is None else (float(w[0]), float(w[1])) for w in windows
        ),
    )


@dataclass(frozen=True)
class RangeRequest:
    """Evaluate a range-query workload: one trajectory-id set per box."""

    boxes: tuple[BoundingBox, ...]
    kind = "range"

    @classmethod
    def from_workload(cls, workload) -> "RangeRequest":
        return cls(_boxes_of(workload))

    def payload(self, service) -> dict:
        return {"boxes": list(self.boxes)}

    def cache_key(self) -> tuple:
        return ("range", _bounds_key(self.boxes))


@dataclass(frozen=True)
class CountRequest:
    """Per-box point counts (the count aggregate)."""

    boxes: tuple[BoundingBox, ...]
    kind = "count"

    @classmethod
    def from_workload(cls, workload) -> "CountRequest":
        return cls(_boxes_of(workload))

    def payload(self, service) -> dict:
        return {"boxes": list(self.boxes)}

    def cache_key(self) -> tuple:
        return ("count", _bounds_key(self.boxes))


@dataclass(frozen=True)
class HistogramRequest:
    """The spatial density heatmap over ``box`` (service extent when None)."""

    grid: int = 32
    box: BoundingBox | None = None
    normalize: bool = False
    kind = "histogram"

    def payload(self, service) -> dict:
        # Resolve the default region HERE, against the live global extent:
        # each shard must rasterize over the same box or partial rasters
        # would not sum to the single-database histogram.
        box = self.box if self.box is not None else service.manager.extent()
        return {"grid": int(self.grid), "box": box}

    def cache_key(self) -> tuple:
        box = self.box
        bounds = None if box is None else _bounds_key((box,))
        return ("histogram", int(self.grid), bounds, bool(self.normalize))


@dataclass(frozen=True)
class KnnRequest:
    """k nearest trajectories per query, under EDR or a custom callable.

    ``measure="t2vec"`` is rejected up front: the learned embedder is a
    fitted in-process object the service has no plumbing to distribute to
    shard workers (evaluate t2vec kNN through
    :func:`repro.queries.knn.knn_query_batch` directly).
    """

    queries: tuple[Trajectory, ...]
    k: int
    time_windows: tuple[tuple[float, float] | None, ...] | None = None
    measure: "str | Callable" = "edr"
    eps: float = 2000.0
    kind = "knn"

    def __post_init__(self) -> None:
        if self.measure == "t2vec":
            raise ValueError(
                "the sharded service cannot serve measure='t2vec' (no "
                "embedder distribution); use 'edr' or a picklable callable"
            )

    def payload(self, service) -> dict:
        return {
            "queries": list(self.queries),
            "k": int(self.k),
            "time_windows": None
            if self.time_windows is None
            else list(self.time_windows),
            "measure": self.measure,
            "eps": float(self.eps),
        }

    def cache_key(self) -> tuple | None:
        if not isinstance(self.measure, str):
            return None  # opaque callables are not cacheable
        return (
            "knn",
            _queries_key(self.queries, self.time_windows),
            int(self.k),
            self.measure,
            float(self.eps),
        )


@dataclass(frozen=True)
class SimilarityRequest:
    """Synchronized-distance threshold matches per query trajectory."""

    queries: tuple[Trajectory, ...]
    delta: float
    time_windows: tuple[tuple[float, float] | None, ...] | None = None
    n_checkpoints: int = 32
    kind = "similarity"

    def payload(self, service) -> dict:
        return {
            "queries": list(self.queries),
            "delta": float(self.delta),
            "time_windows": None
            if self.time_windows is None
            else list(self.time_windows),
            "n_checkpoints": int(self.n_checkpoints),
        }

    def cache_key(self) -> tuple:
        return (
            "similarity",
            _queries_key(self.queries, self.time_windows),
            float(self.delta),
            int(self.n_checkpoints),
        )


REQUEST_TYPES = (
    RangeRequest,
    CountRequest,
    HistogramRequest,
    KnnRequest,
    SimilarityRequest,
)


@dataclass(frozen=True, kw_only=True)
class Response:
    """Serving metadata shared by every response type."""

    kind: str
    epoch: int
    latency_s: float
    cached: bool
    n_shards: int


@dataclass(frozen=True, kw_only=True)
class RangeResponse(Response):
    result_sets: list[set[int]] = field(compare=False)


@dataclass(frozen=True, kw_only=True)
class CountResponse(Response):
    counts: np.ndarray = field(compare=False)


@dataclass(frozen=True, kw_only=True)
class HistogramResponse(Response):
    histogram: np.ndarray = field(compare=False)


@dataclass(frozen=True, kw_only=True)
class KnnResponse(Response):
    #: Per query: neighbour ids, most similar first (may be shorter than k).
    neighbors: list[list[int]] = field(compare=False)
    #: Per query: the (distance, id) pairs behind the ranking.
    pairs: list[list[tuple[float, int]]] = field(compare=False)


@dataclass(frozen=True, kw_only=True)
class SimilarityResponse(Response):
    result_sets: list[set[int]] = field(compare=False)
