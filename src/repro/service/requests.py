"""Typed request/response messages — the canonical, versioned wire schema.

Requests are small frozen dataclasses describing one batched operation;
each knows its scatter ``kind`` (which shard-runtime operation serves it),
how to build the scatter ``payload``, and a canonical ``cache_key`` — a
tuple of primitives over the query *values* (box bounds, query-point
digests, scalars), so two requests built from distinct but equal objects
hit the same cache line. The service keys its LRU on
``(cache_key, shard epoch)``: results can only change when the epoch does,
so ingestion invalidates by construction rather than by explicit flush.

Responses carry the merged result plus serving metadata (epoch, latency,
whether the result came from the cache).

Every request and response additionally implements ``to_json()`` /
``from_json()``: a JSON-object encoding carrying ``"v"``
(:data:`PROTOCOL_VERSION`) and ``"kind"``, with ndarray payloads as nested
lists (Python's float repr round-trips doubles exactly, so decoding is
bit-identical) and :class:`~repro.data.trajectory.Trajectory` payloads as
``{"id", "points"}`` objects. Decoding *validates*: malformed input —
unknown kinds, bad box bounds, non-numeric windows, unsupported versions —
raises the typed :class:`RequestError` with a clear message instead of
surfacing as an ``AttributeError``/``KeyError`` deep inside the scatter
path. This schema is what every transport speaks: the asyncio socket
front-end (:mod:`repro.service.server`) frames exactly these objects, and
the client facades (:mod:`repro.client`) build them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.trajectory import Trajectory
from repro.queries.engine import array_digest

#: Version tag of the wire schema. Bumped on any incompatible change to the
#: request/response JSON layout; the socket handshake rejects mismatches.
PROTOCOL_VERSION = 1


class RequestError(ValueError):
    """A malformed or unsupported wire message, detected at decode time.

    Raised by every ``from_json`` codec (and by ``to_json`` for values that
    cannot travel, e.g. callable kNN measures) so transports can answer
    with a structured error frame instead of dropping the connection or
    failing deep inside the scatter path.
    """


def _fail(message: str) -> "RequestError":
    return RequestError(message)


def _number(value, what: str, *, finite: bool = True) -> float:
    """Decode one JSON number; bools and non-numerics are rejected."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(f"{what} must be a number, got {value!r}")
    out = float(value)
    if finite and not np.isfinite(out):
        raise _fail(f"{what} must be finite, got {value!r}")
    return out


def _integer(value, what: str, *, minimum: int | None = None) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _fail(f"{what} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise _fail(f"{what} must be >= {minimum}, got {value}")
    return int(value)


def box_to_json(box: BoundingBox) -> list[float]:
    """``[xmin, xmax, ymin, ymax, tmin, tmax]`` (the CLI's box layout)."""
    return [box.xmin, box.xmax, box.ymin, box.ymax, box.tmin, box.tmax]


def box_from_json(obj) -> BoundingBox:
    if not isinstance(obj, (list, tuple)) or len(obj) != 6:
        raise _fail(
            "a box must be a 6-element array "
            f"[xmin, xmax, ymin, ymax, tmin, tmax], got {obj!r}"
        )
    bounds = [_number(v, f"box bound {i}") for i, v in enumerate(obj)]
    try:
        return BoundingBox(*bounds)
    except ValueError as exc:  # degenerate (min > max) bounds
        raise _fail(f"bad box bounds: {exc}") from None


def trajectory_to_json(trajectory: Trajectory) -> dict:
    return {
        "id": int(trajectory.traj_id),
        "points": trajectory.points.tolist(),
    }


def trajectory_from_json(obj) -> Trajectory:
    if not isinstance(obj, dict) or "points" not in obj:
        raise _fail(f"a trajectory must be an object with 'points', got {obj!r}")
    points = obj["points"]
    if not isinstance(points, list) or not all(
        isinstance(p, (list, tuple))
        and len(p) == 3
        and not any(isinstance(v, (bool, str, type(None))) for v in p)
        for p in points
    ):
        raise _fail("trajectory points must be an array of [x, y, t] rows")
    traj_id = obj.get("id", -1)
    try:
        return Trajectory(np.asarray(points, dtype=float), traj_id=int(traj_id))
    except (TypeError, ValueError) as exc:
        raise _fail(f"bad trajectory: {exc}") from None


def _windows_to_json(windows) -> list | None:
    if windows is None:
        return None
    return [None if w is None else [float(w[0]), float(w[1])] for w in windows]


def _windows_from_json(obj, n_queries: int):
    if obj is None:
        return None
    if not isinstance(obj, list):
        raise _fail(f"time_windows must be an array or null, got {obj!r}")
    if len(obj) != n_queries:
        raise _fail(
            f"time_windows has {len(obj)} entries for {n_queries} queries"
        )
    windows = []
    for i, w in enumerate(obj):
        if w is None:
            windows.append(None)
            continue
        if not isinstance(w, (list, tuple)) or len(w) != 2:
            raise _fail(f"time window {i} must be [ts, te] or null, got {w!r}")
        windows.append(
            (_number(w[0], f"time window {i} start"),
             _number(w[1], f"time window {i} end"))
        )
    return tuple(windows)


def _queries_from_json(obj) -> tuple[Trajectory, ...]:
    if not isinstance(obj, list) or not obj:
        raise _fail(f"queries must be a non-empty array, got {obj!r}")
    return tuple(trajectory_from_json(q) for q in obj)


def _boxes_from_json(obj: dict) -> tuple[BoundingBox, ...]:
    boxes = obj.get("boxes")
    if not isinstance(boxes, list):
        raise _fail(f"'boxes' must be an array of boxes, got {boxes!r}")
    return tuple(box_from_json(b) for b in boxes)


def _check_version(obj) -> None:
    version = obj.get("v")
    if version != PROTOCOL_VERSION:
        raise _fail(
            f"unsupported protocol version {version!r} "
            f"(this build speaks version {PROTOCOL_VERSION})"
        )


def _boxes_of(queries) -> tuple[BoundingBox, ...]:
    """Normalize a workload / RangeQuery list / BoundingBox list to boxes."""
    return tuple(q.box if hasattr(q, "box") else q for q in queries)


def _bounds_key(boxes: tuple[BoundingBox, ...]) -> bytes:
    if not boxes:
        return b""
    lo = np.array([[b.xmin, b.ymin, b.tmin] for b in boxes])
    hi = np.array([[b.xmax, b.ymax, b.tmax] for b in boxes])
    return lo.tobytes() + hi.tobytes()

def _queries_key(
    queries: tuple[Trajectory, ...],
    windows,
) -> tuple:
    digests = tuple(array_digest(q.points) for q in queries)
    if windows is None:
        return (digests, None)
    # Deep-convert: windows commonly arrive as lists (e.g. JSON-decoded),
    # which are unhashable and would crash the cache lookup.
    return (
        digests,
        tuple(
            None if w is None else (float(w[0]), float(w[1])) for w in windows
        ),
    )


@dataclass(frozen=True)
class RangeRequest:
    """Evaluate a range-query workload: one trajectory-id set per box."""

    boxes: tuple[BoundingBox, ...]
    kind = "range"

    @classmethod
    def from_workload(cls, workload) -> "RangeRequest":
        return cls(_boxes_of(workload))

    def payload(self, service) -> dict:
        return {"boxes": list(self.boxes)}

    def cache_key(self) -> tuple:
        return ("range", _bounds_key(self.boxes))

    def to_json(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "boxes": [box_to_json(b) for b in self.boxes],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "RangeRequest":
        return cls(_boxes_from_json(obj))


@dataclass(frozen=True)
class CountRequest:
    """Per-box point counts (the count aggregate)."""

    boxes: tuple[BoundingBox, ...]
    kind = "count"

    @classmethod
    def from_workload(cls, workload) -> "CountRequest":
        return cls(_boxes_of(workload))

    def payload(self, service) -> dict:
        return {"boxes": list(self.boxes)}

    def cache_key(self) -> tuple:
        return ("count", _bounds_key(self.boxes))

    def to_json(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "boxes": [box_to_json(b) for b in self.boxes],
        }

    @classmethod
    def from_json(cls, obj: dict) -> "CountRequest":
        return cls(_boxes_from_json(obj))


@dataclass(frozen=True)
class HistogramRequest:
    """The spatial density heatmap over ``box`` (service extent when None)."""

    grid: int = 32
    box: BoundingBox | None = None
    normalize: bool = False
    kind = "histogram"

    def payload(self, service) -> dict:
        # Resolve the default region HERE, against the live global extent:
        # each shard must rasterize over the same box or partial rasters
        # would not sum to the single-database histogram.
        box = self.box if self.box is not None else service.manager.extent()
        return {"grid": int(self.grid), "box": box}

    def cache_key(self) -> tuple:
        box = self.box
        bounds = None if box is None else _bounds_key((box,))
        return ("histogram", int(self.grid), bounds, bool(self.normalize))

    def to_json(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "grid": int(self.grid),
            "box": None if self.box is None else box_to_json(self.box),
            "normalize": bool(self.normalize),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "HistogramRequest":
        grid = _integer(obj.get("grid", 32), "grid", minimum=1)
        box = obj.get("box")
        normalize = obj.get("normalize", False)
        if not isinstance(normalize, bool):
            raise _fail(f"normalize must be a boolean, got {normalize!r}")
        return cls(
            grid=grid,
            box=None if box is None else box_from_json(box),
            normalize=normalize,
        )


@dataclass(frozen=True)
class KnnRequest:
    """k nearest trajectories per query, under EDR or a custom callable.

    ``measure="t2vec"`` is rejected up front: the learned embedder is a
    fitted in-process object the service has no plumbing to distribute to
    shard workers (evaluate t2vec kNN through
    :func:`repro.queries.knn.knn_query_batch` directly).
    """

    queries: tuple[Trajectory, ...]
    k: int
    time_windows: tuple[tuple[float, float] | None, ...] | None = None
    measure: "str | Callable" = "edr"
    eps: float = 2000.0
    kind = "knn"

    def __post_init__(self) -> None:
        if self.measure == "t2vec":
            raise ValueError(
                "the sharded service cannot serve measure='t2vec' (no "
                "embedder distribution); use 'edr' or a picklable callable"
            )

    def payload(self, service) -> dict:
        return {
            "queries": list(self.queries),
            "k": int(self.k),
            "time_windows": None
            if self.time_windows is None
            else list(self.time_windows),
            "measure": self.measure,
            "eps": float(self.eps),
        }

    def cache_key(self) -> tuple | None:
        if not isinstance(self.measure, str):
            return None  # opaque callables are not cacheable
        return (
            "knn",
            _queries_key(self.queries, self.time_windows),
            int(self.k),
            self.measure,
            float(self.eps),
        )

    def to_json(self) -> dict:
        if not isinstance(self.measure, str):
            raise RequestError(
                "callable kNN measures are in-process objects and cannot be "
                "wire-encoded; use measure='edr' over the network"
            )
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "queries": [trajectory_to_json(q) for q in self.queries],
            "k": int(self.k),
            "time_windows": _windows_to_json(self.time_windows),
            "measure": self.measure,
            "eps": float(self.eps),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "KnnRequest":
        queries = _queries_from_json(obj.get("queries"))
        measure = obj.get("measure", "edr")
        if not isinstance(measure, str):
            raise _fail(f"measure must be a string on the wire, got {measure!r}")
        try:
            return cls(
                queries=queries,
                k=_integer(obj.get("k"), "k", minimum=1),
                time_windows=_windows_from_json(
                    obj.get("time_windows"), len(queries)
                ),
                measure=measure,
                eps=_number(obj.get("eps", 2000.0), "eps"),
            )
        except RequestError:
            raise
        except ValueError as exc:  # e.g. the t2vec rejection in __post_init__
            raise _fail(str(exc)) from None


@dataclass(frozen=True)
class SimilarityRequest:
    """Synchronized-distance threshold matches per query trajectory."""

    queries: tuple[Trajectory, ...]
    delta: float
    time_windows: tuple[tuple[float, float] | None, ...] | None = None
    n_checkpoints: int = 32
    kind = "similarity"

    def payload(self, service) -> dict:
        return {
            "queries": list(self.queries),
            "delta": float(self.delta),
            "time_windows": None
            if self.time_windows is None
            else list(self.time_windows),
            "n_checkpoints": int(self.n_checkpoints),
        }

    def cache_key(self) -> tuple:
        return (
            "similarity",
            _queries_key(self.queries, self.time_windows),
            float(self.delta),
            int(self.n_checkpoints),
        )

    def to_json(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "queries": [trajectory_to_json(q) for q in self.queries],
            "delta": float(self.delta),
            "time_windows": _windows_to_json(self.time_windows),
            "n_checkpoints": int(self.n_checkpoints),
        }

    @classmethod
    def from_json(cls, obj: dict) -> "SimilarityRequest":
        queries = _queries_from_json(obj.get("queries"))
        delta = _number(obj.get("delta"), "delta")
        if delta < 0:
            raise _fail(f"delta must be non-negative, got {delta}")
        return cls(
            queries=queries,
            delta=delta,
            time_windows=_windows_from_json(
                obj.get("time_windows"), len(queries)
            ),
            n_checkpoints=_integer(
                obj.get("n_checkpoints", 32), "n_checkpoints", minimum=1
            ),
        )


REQUEST_TYPES = (
    RangeRequest,
    CountRequest,
    HistogramRequest,
    KnnRequest,
    SimilarityRequest,
)

#: ``kind`` -> request class, the wire-decode dispatch table.
REQUEST_KINDS = {cls.kind: cls for cls in REQUEST_TYPES}


def request_to_json(request) -> dict:
    """Encode any typed request to its wire JSON object."""
    return request.to_json()


def request_from_json(obj):
    """Decode (and validate) a wire JSON object into a typed request.

    Raises :class:`RequestError` on anything malformed: a non-object,
    an unsupported ``"v"``, an unknown ``"kind"``, bad box bounds,
    non-numeric windows, and so on.
    """
    if not isinstance(obj, dict):
        raise _fail(f"a request must be a JSON object, got {obj!r}")
    _check_version(obj)
    kind = obj.get("kind")
    cls = REQUEST_KINDS.get(kind)
    if cls is None:
        raise _fail(
            f"unknown request kind {kind!r}; "
            f"expected one of {sorted(REQUEST_KINDS)}"
        )
    return cls.from_json(obj)


@dataclass(frozen=True, kw_only=True)
class Response:
    """Serving metadata shared by every response type."""

    kind: str
    epoch: int
    latency_s: float
    cached: bool
    n_shards: int
    #: The request's trace id (minted in the client or accepted from the
    #: wire); echoes back so callers can correlate responses with exported
    #: spans. Excluded from equality — two transports serving the same
    #: request produce equal responses regardless of trace ids.
    trace_id: str | None = field(default=None, compare=False)

    def _meta_json(self) -> dict:
        out = {
            "v": PROTOCOL_VERSION,
            "kind": self.kind,
            "epoch": int(self.epoch),
            "latency_s": float(self.latency_s),
            "cached": bool(self.cached),
            "n_shards": int(self.n_shards),
        }
        if self.trace_id is not None:
            out["trace"] = str(self.trace_id)
        return out


@dataclass(frozen=True, kw_only=True)
class RangeResponse(Response):
    result_sets: list[set[int]] = field(compare=False)

    def to_json(self) -> dict:
        return {
            **self._meta_json(),
            "result_sets": [sorted(int(i) for i in s) for s in self.result_sets],
        }


@dataclass(frozen=True, kw_only=True)
class CountResponse(Response):
    counts: np.ndarray = field(compare=False)

    def to_json(self) -> dict:
        return {**self._meta_json(), "counts": self.counts.tolist()}


@dataclass(frozen=True, kw_only=True)
class HistogramResponse(Response):
    histogram: np.ndarray = field(compare=False)

    def to_json(self) -> dict:
        return {**self._meta_json(), "histogram": self.histogram.tolist()}


@dataclass(frozen=True, kw_only=True)
class KnnResponse(Response):
    #: Per query: neighbour ids, most similar first (may be shorter than k).
    neighbors: list[list[int]] = field(compare=False)
    #: Per query: the (distance, id) pairs behind the ranking.
    pairs: list[list[tuple[float, int]]] = field(compare=False)

    def to_json(self) -> dict:
        # Neighbors are derived from the pairs on decode; only pairs travel.
        return {
            **self._meta_json(),
            "pairs": [
                [[float(d), int(i)] for d, i in pairs] for pairs in self.pairs
            ],
        }


@dataclass(frozen=True, kw_only=True)
class SimilarityResponse(Response):
    result_sets: list[set[int]] = field(compare=False)

    def to_json(self) -> dict:
        return {
            **self._meta_json(),
            "result_sets": [sorted(int(i) for i in s) for s in self.result_sets],
        }


def response_to_json(response) -> dict:
    """Encode any typed response to its wire JSON object."""
    return response.to_json()


def response_from_json(obj):
    """Decode a wire JSON object back into its typed response.

    The numeric payloads round-trip bit-identically: JSON carries the exact
    shortest repr of each double, counts decode back to int64, and kNN
    neighbour lists are re-derived from the (distance, id) pairs — the same
    derivation the serving side uses.
    """
    if not isinstance(obj, dict):
        raise _fail(f"a response must be a JSON object, got {obj!r}")
    _check_version(obj)
    kind = obj.get("kind")
    if kind not in REQUEST_KINDS:
        raise _fail(f"unknown response kind {kind!r}")
    trace_id = obj.get("trace")
    if trace_id is not None and not isinstance(trace_id, str):
        raise _fail(f"trace must be a string or absent, got {trace_id!r}")
    try:
        meta = {
            "kind": kind,
            "epoch": int(obj["epoch"]),
            "latency_s": float(obj["latency_s"]),
            "cached": bool(obj["cached"]),
            "n_shards": int(obj["n_shards"]),
            "trace_id": trace_id,
        }
        if kind in ("range", "similarity"):
            cls = RangeResponse if kind == "range" else SimilarityResponse
            return cls(
                result_sets=[set(int(i) for i in s) for s in obj["result_sets"]],
                **meta,
            )
        if kind == "count":
            return CountResponse(
                counts=np.asarray(obj["counts"], dtype=np.int64), **meta
            )
        if kind == "histogram":
            return HistogramResponse(
                histogram=np.asarray(obj["histogram"], dtype=float), **meta
            )
        pairs = [
            [(float(d), int(i)) for d, i in query_pairs]
            for query_pairs in obj["pairs"]
        ]
        return KnnResponse(
            neighbors=[[tid for _, tid in query_pairs] for query_pairs in pairs],
            pairs=pairs,
            **meta,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail(f"malformed {kind!r} response: {exc!r}") from None


def build_response(
    request,
    payload,
    *,
    epoch: int,
    latency_s: float,
    cached: bool,
    n_shards: int,
    trace_id: str | None = None,
):
    """Materialize the typed response for ``request`` from a canonical payload.

    The canonical payload forms are what :class:`QueryService`'s merge (and
    :class:`repro.client.LocalClient`'s engine dispatch) produce: tuples of
    frozensets for range/similarity, read-only arrays for count/histogram,
    and tuples of ``(distance, id)`` pair tuples for kNN. Payloads are
    copied into mutable containers here so cached entries stay immutable.
    """
    meta = {
        "kind": request.kind,
        "epoch": epoch,
        "latency_s": latency_s,
        "cached": cached,
        "n_shards": n_shards,
        "trace_id": trace_id,
    }
    if request.kind == "range":
        return RangeResponse(result_sets=[set(s) for s in payload], **meta)
    if request.kind == "similarity":
        return SimilarityResponse(result_sets=[set(s) for s in payload], **meta)
    if request.kind == "count":
        return CountResponse(counts=payload.copy(), **meta)
    if request.kind == "histogram":
        return HistogramResponse(histogram=payload.copy(), **meta)
    return KnnResponse(
        neighbors=[[tid for _, tid in pairs] for pairs in payload],
        pairs=[list(pairs) for pairs in payload],
        **meta,
    )


def serve_cached(
    request,
    *,
    epoch: int,
    n_shards: int,
    cache,
    cache_size: int,
    stats,
    dispatch,
    tracer=None,
    trace_id: str | None = None,
    cache_lock=None,
):
    """The shared serving loop: cache lookup, dispatch, stats, response.

    Both :class:`~repro.service.service.QueryService` and
    :class:`~repro.client.local.LocalClient` serve requests through this
    one code path so their cache/epoch/stats semantics cannot drift (the
    three-transport parity tests depend on them being identical): results
    are memoized in ``cache`` (an ``OrderedDict`` LRU holding immutable
    canonical payloads) under ``(request.cache_key(), epoch)``, requests
    with no cache key are executed uncached and recorded as uncacheable
    rather than as misses, and ``dispatch(request)`` supplies the
    transport-specific execution (engine calls / shard scatter + merge).

    When a ``tracer`` (:class:`repro.obs.tracing.Tracer`) and ``trace_id``
    are supplied, ``cache_lookup`` and ``request`` spans are emitted; span
    emission never changes the cache/stats/latency arithmetic.

    ``cache_lock`` (a ``threading.Lock``) guards the LRU's lookup and
    store when many worker threads serve concurrently; cached payloads
    are immutable, so only the ``OrderedDict`` bookkeeping needs the
    lock, never the dispatch itself. Two threads racing the same cold key
    both dispatch and store the identical immutable payload — wasted work
    at worst, never a wrong answer. ``None`` (the single-threaded
    transports) keeps the historical lock-free path.
    """
    start = time.perf_counter()
    request_key = request.cache_key()
    key = None if request_key is None else (request_key, epoch)
    if key is not None and cache_lock is not None:
        with cache_lock:
            hit = key in cache
            if hit:
                cache.move_to_end(key)
                payload = cache[key]
    else:
        hit = key is not None and key in cache
        if hit:
            cache.move_to_end(key)
            payload = cache[key]
    if tracer is not None:
        tracer.record(
            trace_id,
            "cache_lookup",
            time.perf_counter() - start,
            kind=request.kind,
            hit=hit,
            cacheable=key is not None,
        )
    if hit:
        cached = True
    else:
        payload = dispatch(request)
        cached = False
        if key is not None:
            if cache_lock is not None:
                with cache_lock:
                    cache[key] = payload
                    while len(cache) > cache_size:
                        cache.popitem(last=False)
            else:
                cache[key] = payload
                while len(cache) > cache_size:
                    cache.popitem(last=False)
    latency = time.perf_counter() - start
    if tracer is not None:
        tracer.record(
            trace_id, "request", latency, kind=request.kind, cached=cached
        )
    stats.record(request.kind, latency, cached, cacheable=request_key is not None)
    return build_response(
        request,
        payload,
        epoch=epoch,
        latency_s=latency,
        cached=cached,
        n_shards=n_shards,
        trace_id=trace_id,
    )
