"""Shard partitioning and membership management.

A :class:`ShardManager` splits a :class:`~repro.data.TrajectoryDatabase`
into ``K`` shards, each owning a disjoint subset of the trajectories. The
manager lives in the serving process and is the source of truth for
membership: it assigns global trajectory ids, routes streamed-in
trajectories to shards via a deterministic :class:`Partitioner`, and tracks
the *shard epoch* — a counter bumped on every ingest batch that the request
layer uses to key its result cache (results can only change when the epoch
does).

Shard *execution* state (the per-shard CSR point matrix and
:class:`~repro.queries.engine.QueryEngine`) lives in
:class:`~repro.service.runtime.ShardRuntime` objects, which may run in the
serving process (serial executor) or in per-shard worker processes
(process executor) — see :mod:`repro.service.executors`. The
:class:`Shard` snapshots exchanged between manager and runtimes are plain
picklable containers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.data.partition import (  # re-exported: the rules are data-layer
    PARTITIONERS,
    HashPartitioner,
    SpatialPartitioner,
    centroid_x,
    make_partitioner,
)
from repro.data.trajectory import Trajectory


@dataclass
class Shard:
    """A picklable snapshot of one shard's membership.

    ``trajectories[i]`` holds global id ``global_ids[i]``; the list is
    ordered by global id (ascending), which both partitioners and the
    append-only ingest path preserve.
    """

    index: int
    trajectories: list[Trajectory] = field(default_factory=list)
    global_ids: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.trajectories)


@dataclass
class ShardSnapshot:
    """A columnar shard snapshot: membership as array-store handles.

    Exported by :meth:`ShardManager.export_snapshots`. Instead of a list of
    trajectory objects it carries the shard's CSR layout — the ``(N, 3)``
    point matrix and ``(M + 1,)`` row offsets — as
    :class:`~repro.data.store.ArrayHandle` references into whichever store
    produced it. Under the heap store, pickling a snapshot copies the
    arrays (the old behaviour, minus per-object overhead); under the
    shared-memory store the pickle is a few hundred bytes of segment names
    and the receiving process *maps* the base tier instead of unpickling
    it.

    ``store_spec`` is the exporting store's picklable ``spec()``; shard
    runtimes derive their own store from it so that compacted tiers
    republish into the same segment family (and are therefore covered by
    the owning store's close/atexit sweep).
    """

    index: int
    global_ids: np.ndarray
    matrix: object  # ArrayHandle for the (N, 3) float64 point matrix
    offsets: object  # ArrayHandle for the (M + 1,) int64 row offsets
    store_spec: tuple = ("heap", None)

    def __len__(self) -> int:
        return len(self.global_ids)


class ShardManager:
    """Partitions a database into shards and routes streamed ingests.

    Build one with :meth:`create`; hand :meth:`snapshots` to a
    scatter/gather executor. All query execution goes through executors —
    the manager only owns membership, the global extent, and the epoch.
    """

    def __init__(
        self,
        shards: list[Shard],
        partitioner: HashPartitioner | SpatialPartitioner,
    ) -> None:
        self.shards = shards
        self.partitioner = partitioner
        self.epoch = 0
        self._next_global_id = sum(len(s) for s in shards)
        self._extent: BoundingBox | None = None
        #: Per-shard union bounding boxes (None while a shard is empty),
        #: maintained alongside membership so the request layer can bound
        #: kNN distances per shard without a runtime round-trip. Matches
        #: each ShardRuntime.extent() by construction: both union the same
        #: trajectory boxes.
        self._shard_extents: list[BoundingBox | None] = [None] * len(shards)
        #: gid -> (shard index, position in shard) for O(1) lookups.
        self._locations: dict[int, tuple[int, int]] = {}
        for shard in shards:
            for pos, (gid, traj) in enumerate(
                zip(shard.global_ids, shard.trajectories)
            ):
                self._locations[gid] = (shard.index, pos)
                self._grow_extents(shard.index, traj.bounding_box)

    @classmethod
    def create(
        cls,
        db: TrajectoryDatabase,
        n_shards: int = 4,
        partitioner: str = "hash",
    ) -> "ShardManager":
        """Partition ``db`` into ``n_shards`` shards.

        Global ids are the database's trajectory ids; each shard's member
        list is ordered by global id. Shards may start empty (``n_shards``
        larger than the database) — streaming ingests fill them later.
        """
        part = make_partitioner(partitioner, db, n_shards)
        # Initial membership runs through the SAME assign() rule that routes
        # streamed ingests, so the two can never disagree.
        # (TrajectoryDatabase.partition_ids mirrors these rules as a bulk
        # view; tests pin the equivalence.)
        shards = [Shard(index=s) for s in range(n_shards)]
        for gid, traj in enumerate(db):
            shard = shards[part.assign(gid, traj)]
            shard.trajectories.append(traj)
            shard.global_ids.append(gid)
        return cls(shards, part)

    # ------------------------------------------------------------------ queries
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_trajectories(self) -> int:
        return self._next_global_id

    @property
    def total_points(self) -> int:
        return sum(len(t) for s in self.shards for t in s.trajectories)

    def _grow_extents(self, shard_idx: int, box: BoundingBox) -> None:
        self._extent = box if self._extent is None else self._extent.union(box)
        current = self._shard_extents[shard_idx]
        self._shard_extents[shard_idx] = (
            box if current is None else current.union(box)
        )

    def extent(self) -> BoundingBox:
        """The union bounding box of every trajectory across all shards.

        Bit-identical to ``self.database().bounding_box`` (same min/max
        reduction), and the default raster region of histogram requests.
        """
        if self._extent is None:
            raise ValueError("the service holds no trajectories yet")
        return self._extent

    def shard_extents(self) -> list[BoundingBox | None]:
        """Per-shard union bounding boxes (None for empty shards).

        Equal to each runtime's :meth:`~repro.service.runtime.ShardRuntime.extent`
        — both union the same member trajectories — but available in the
        serving process without a shard round-trip, which is what lets the
        kNN scatter prune shards *before* dispatching to them.
        """
        return list(self._shard_extents)

    def database(self) -> TrajectoryDatabase:
        """Materialize all shards back into one database, in global-id order.

        The reference view the service is property-tested against: queries
        on the sharded service must equal a fresh single-engine evaluation
        of this database.
        """
        merged: list[Trajectory | None] = [None] * self._next_global_id
        for shard in self.shards:
            for gid, traj in zip(shard.global_ids, shard.trajectories):
                merged[gid] = traj
        if any(t is None for t in merged):
            raise RuntimeError("shard membership lost trajectories")
        return TrajectoryDatabase(merged)  # type: ignore[arg-type]

    def shard_point_counts(self) -> list[int]:
        """Per-shard total point counts (the rebalancer's skew signal)."""
        return [
            sum(len(t) for t in shard.trajectories) for shard in self.shards
        ]

    def snapshots(self) -> list[Shard]:
        """The current shard snapshots (for executor initialization)."""
        return self.shards

    def export_snapshot(
        self, store, shard: Shard, label_prefix: str | None = None
    ) -> ShardSnapshot:
        """Freeze one shard's membership into columnar store handles.

        ``label_prefix`` defaults to ``s<index>`` (the construction-time
        layout); online reshards pass an epoch-qualified prefix so the new
        segments never collide with the names of a previous layout that is
        still resident in the family.
        """
        if label_prefix is None:
            label_prefix = f"s{shard.index}"
        if shard.trajectories:
            matrix = np.concatenate(
                [t.points for t in shard.trajectories], axis=0
            )
            counts = np.fromiter(
                (len(t) for t in shard.trajectories),
                dtype=np.int64,
                count=len(shard.trajectories),
            )
            offsets = np.zeros(len(shard.trajectories) + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
        else:
            matrix = np.empty((0, 3), dtype=np.float64)
            offsets = np.zeros(1, dtype=np.int64)
        return ShardSnapshot(
            index=shard.index,
            global_ids=np.asarray(shard.global_ids, dtype=np.int64),
            matrix=store.put(matrix, label=f"{label_prefix}m"),
            offsets=store.put(offsets, label=f"{label_prefix}o"),
            store_spec=store.spec(),
        )

    def export_snapshots(self, store) -> list[ShardSnapshot]:
        """Freeze every shard's membership into columnar store handles.

        Each shard's member points are concatenated once into its CSR
        layout and placed into ``store``
        (:class:`~repro.data.store.HeapStore` or
        :class:`~repro.data.store.SharedMemoryStore`); the returned
        snapshots are what executors ship to shard runtimes. The caller
        owns ``store`` and must keep it open for as long as any executor
        built from these snapshots is alive.
        """
        return [self.export_snapshot(store, shard) for shard in self.shards]

    def trajectory(self, global_id: int) -> Trajectory:
        """The trajectory holding ``global_id`` (ingested ones included)."""
        try:
            shard_idx, pos = self._locations[global_id]
        except KeyError:
            raise KeyError(f"no trajectory with global id {global_id}") from None
        return self.shards[shard_idx].trajectories[pos]

    # ------------------------------------------------------------------- ingest
    def plan_ingest(
        self, trajectories: list[Trajectory]
    ) -> dict[int, list[tuple[int, Trajectory]]]:
        """Assign global ids and route a batch — WITHOUT committing it.

        Returns ``{shard_index: [(global_id, trajectory), ...]}``. No
        manager state changes: the caller delivers the routed batches to
        the shard runtimes first and calls :meth:`commit_ingest` only once
        delivery succeeded, so a failed delivery leaves the manager's view
        of the world (ids, membership, extent, epoch) untouched.
        """
        routed: dict[int, list[tuple[int, Trajectory]]] = {}
        next_gid = self._next_global_id
        for traj in trajectories:
            if not isinstance(traj, Trajectory):
                raise TypeError(f"can only ingest Trajectory objects, got {traj!r}")
            shard_idx = self.partitioner.assign(next_gid, traj)
            routed.setdefault(shard_idx, []).append((next_gid, traj))
            next_gid += 1
        return routed

    def commit_ingest(
        self, routed: dict[int, list[tuple[int, Trajectory]]]
    ) -> None:
        """Apply a delivered :meth:`plan_ingest` batch and bump the epoch."""
        if not routed:
            return
        for shard_idx, batch in routed.items():
            shard = self.shards[shard_idx]
            for gid, traj in batch:
                shard.trajectories.append(traj)
                shard.global_ids.append(gid)
                self._locations[gid] = (shard_idx, len(shard.trajectories) - 1)
                self._grow_extents(shard_idx, traj.bounding_box)
        self._next_global_id += sum(len(b) for b in routed.values())
        self.epoch += 1

    # ------------------------------------------------------------- rebalance
    # Online shard surgery for the spatial partitioner: membership and the
    # routing rule (the slab cut-point array) change in the same step, so
    # streamed ingests can never disagree with the new layout. The manager
    # only restructures its own view — callers (QueryService) are
    # responsible for exporting fresh snapshots and resharding the
    # executor under the epoch write lock before serving again.

    def _require_spatial(self) -> SpatialPartitioner:
        if not isinstance(self.partitioner, SpatialPartitioner):
            raise ValueError(
                "online split/merge requires the spatial partitioner; "
                f"{self.partitioner.name!r} routes by global id and its "
                "shard contents cannot be described by a cut point"
            )
        return self.partitioner

    @staticmethod
    def _split_cut(xs: np.ndarray) -> float:
        """A cut splitting centroid xs into two non-empty halves.

        ``assign`` sends ``x < cut`` left and ``x >= cut`` right, so the
        median works unless everything at or below it equals the minimum —
        then the cut moves up to the next distinct value. Raises when all
        centroids coincide (no cut can separate them).
        """
        order = np.sort(xs)
        cut = float(order[len(order) // 2])
        if not np.any(xs < cut):
            bigger = order[order > cut]
            if bigger.size == 0:
                raise ValueError(
                    "cannot split: all member centroids share one x value"
                )
            cut = float(bigger[0])
        return cut

    def _reindex(self) -> None:
        """Rebuild positions, locations, and extents after shard surgery."""
        self._locations = {}
        self._shard_extents = [None] * len(self.shards)
        for pos, shard in enumerate(self.shards):
            shard.index = pos
            for i, (gid, traj) in enumerate(
                zip(shard.global_ids, shard.trajectories)
            ):
                self._locations[gid] = (pos, i)
                current = self._shard_extents[pos]
                box = traj.bounding_box
                self._shard_extents[pos] = (
                    box if current is None else current.union(box)
                )

    def can_split(self, shard_idx: int) -> bool:
        """True when ``shard_idx`` holds two separably-routed members."""
        if not isinstance(self.partitioner, SpatialPartitioner):
            return False
        shard = self.shards[shard_idx]
        if len(shard) < 2:
            return False
        xs = [centroid_x(t) for t in shard.trajectories]
        return min(xs) < max(xs)

    def split_shard(self, shard_idx: int) -> list[Shard]:
        """Split a hot shard into two slabs at its median member centroid.

        Inserts the cut into the spatial partitioner (so future ingests
        route consistently), renumbers every shard to its list position,
        rebuilds locations/extents, and bumps the epoch — cached results
        keyed on the old epoch can no longer be served. Returns the two
        replacement shards (occupying ``shard_idx`` and ``shard_idx + 1``).
        """
        part = self._require_spatial()
        shard = self.shards[shard_idx]
        xs = np.array([centroid_x(t) for t in shard.trajectories])
        if len(xs) < 2:
            raise ValueError(f"shard {shard_idx} is too small to split")
        cut = self._split_cut(xs)
        left = Shard(index=shard_idx)
        right = Shard(index=shard_idx + 1)
        # One pass in existing (ascending-gid) order keeps both halves
        # gid-sorted — the invariant the service's exact kNN merge needs.
        for x, gid, traj in zip(xs, shard.global_ids, shard.trajectories):
            target = left if x < cut else right
            target.trajectories.append(traj)
            target.global_ids.append(gid)
        part.insert_cut(shard_idx, cut)
        self.shards[shard_idx : shard_idx + 1] = [left, right]
        self._reindex()
        self.epoch += 1
        return [left, right]

    def merge_shards(self, shard_idx: int) -> list[Shard]:
        """Merge two cold adjacent slabs (``shard_idx`` and its right
        neighbour) into one, removing the cut between them.

        Same commitment protocol as :meth:`split_shard`: routing rule and
        membership move together, everything renumbers, the epoch bumps.
        Returns the single replacement shard.
        """
        part = self._require_spatial()
        if shard_idx + 1 >= len(self.shards):
            raise ValueError(
                f"shard {shard_idx} has no right neighbour to merge with"
            )
        a, b = self.shards[shard_idx], self.shards[shard_idx + 1]
        merged = Shard(index=shard_idx)
        # Both inputs are gid-sorted; a sorted merge keeps the invariant.
        pairs = sorted(
            list(zip(a.global_ids, a.trajectories))
            + list(zip(b.global_ids, b.trajectories)),
            key=lambda p: p[0],
        )
        merged.global_ids = [gid for gid, _ in pairs]
        merged.trajectories = [traj for _, traj in pairs]
        part.remove_cut(shard_idx)
        self.shards[shard_idx : shard_idx + 2] = [merged]
        self._reindex()
        self.epoch += 1
        return [merged]

    def plan_rebalance(self, threshold: float) -> tuple[str, int] | None:
        """One rebalancing step for the current skew, or None when balanced.

        ``threshold`` (> 1) bounds acceptable imbalance of per-shard point
        counts: the hottest shard splits when it exceeds ``threshold x
        mean``, and the coldest adjacent pair merges when its combined
        count stays under ``mean / threshold``. With ``threshold > 1`` a
        split's halves can never immediately re-merge (t^2 < n/(n+1) would
        be required), so alternating plans cannot oscillate.
        """
        if threshold <= 1.0:
            raise ValueError("rebalance threshold must be > 1")
        if not isinstance(self.partitioner, SpatialPartitioner):
            return None
        counts = self.shard_point_counts()
        total = sum(counts)
        if total == 0:
            return None
        mean = total / len(counts)
        hot = max(range(len(counts)), key=counts.__getitem__)
        if counts[hot] > threshold * mean and self.can_split(hot):
            return ("split", hot)
        if len(counts) >= 2:
            pair = min(
                range(len(counts) - 1),
                key=lambda i: counts[i] + counts[i + 1],
            )
            if counts[pair] + counts[pair + 1] < mean / threshold:
                return ("merge", pair)
        return None

    def ingest(
        self, trajectories: list[Trajectory]
    ) -> dict[int, list[tuple[int, Trajectory]]]:
        """Route AND commit a batch in one step (no shard-runtime delivery).

        Convenience for manager-only use; :class:`~repro.service.service.QueryService`
        instead plans, delivers to the executor, then commits, so a failed
        delivery cannot desynchronize the manager from the runtimes.
        """
        routed = self.plan_ingest(trajectories)
        self.commit_ingest(routed)
        return routed
