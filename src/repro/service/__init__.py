"""The sharded online query service (serving layer over the batch engine).

Layering (see ``ARCHITECTURE.md`` at the repository root)::

    data (TrajectoryDatabase) -> index/engine (CSR + QueryEngine)
        -> service (shards + executors + request layer)

* :mod:`~repro.service.sharding` — :class:`ShardManager`: partitions the
  database into K shards (hash round-robin or spatial slabs), assigns
  global trajectory ids, routes streamed ingests, tracks the shard epoch;
* :mod:`~repro.service.runtime` — :class:`ShardRuntime`: per-shard
  execution, a compacted base :class:`~repro.queries.engine.QueryEngine`
  plus a streamed pending tier (ingest without rebuild);
* :mod:`~repro.service.executors` — scatter/gather over shards, serial
  reference and one-worker-process-per-shard implementations;
* :mod:`~repro.service.requests` — the typed request/response API;
* :mod:`~repro.service.service` — :class:`QueryService`: caching, stats,
  ingestion, and the exact k-way/union/sum merges.

Quickstart::

    from repro import QueryService, synthetic_database

    db = synthetic_database("geolife", n_trajectories=100, seed=7)
    with QueryService(db, n_shards=4, executor="process") as service:
        hot = service.range(workload)            # == QueryEngine results
        service.ingest(more_trajectories)        # streamed, no rebuild
        counts = service.count(boxes).counts
"""

from repro.service.executors import (
    EXECUTORS,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutionError,
    make_executor,
)
from repro.service.requests import (
    REQUEST_TYPES,
    CountRequest,
    CountResponse,
    HistogramRequest,
    HistogramResponse,
    KnnRequest,
    KnnResponse,
    RangeRequest,
    RangeResponse,
    Response,
    SimilarityRequest,
    SimilarityResponse,
)
from repro.service.runtime import ShardRuntime
from repro.service.service import (
    QueryService,
    ServiceStats,
    knn_shard_lower_bound,
)
from repro.service.sharding import (
    PARTITIONERS,
    HashPartitioner,
    Shard,
    ShardManager,
    SpatialPartitioner,
)

__all__ = [
    "QueryService",
    "ServiceStats",
    "knn_shard_lower_bound",
    "ShardManager",
    "Shard",
    "ShardRuntime",
    "HashPartitioner",
    "SpatialPartitioner",
    "SerialShardExecutor",
    "ProcessShardExecutor",
    "ShardExecutionError",
    "make_executor",
    "EXECUTORS",
    "PARTITIONERS",
    "RangeRequest",
    "CountRequest",
    "HistogramRequest",
    "KnnRequest",
    "SimilarityRequest",
    "Response",
    "RangeResponse",
    "CountResponse",
    "HistogramResponse",
    "KnnResponse",
    "SimilarityResponse",
    "REQUEST_TYPES",
]
