"""The sharded online query service (serving layer over the batch engine).

Layering (see ``ARCHITECTURE.md`` at the repository root)::

    data (TrajectoryDatabase) -> index/engine (CSR + QueryEngine)
        -> service (shards + executors + request layer)

* :mod:`~repro.service.sharding` — :class:`ShardManager`: partitions the
  database into K shards (hash round-robin or spatial slabs), assigns
  global trajectory ids, routes streamed ingests, tracks the shard epoch;
* :mod:`~repro.service.runtime` — :class:`ShardRuntime`: per-shard
  execution, a compacted base :class:`~repro.queries.engine.QueryEngine`
  plus a streamed pending tier (ingest without rebuild);
* :mod:`~repro.service.compaction` — pluggable base-rebuild policies:
  :class:`ExactCompaction` (bit-identical default) and
  :class:`SimplifyingCompaction` (the paper's simplifiers as the storage
  engine, under a per-trajectory error budget);
* :mod:`~repro.service.executors` — scatter/gather over shards, serial
  reference and replica-set-of-worker-processes-per-shard implementations;
* :mod:`~repro.service.replication` — :class:`ReplicaSet`: R workers per
  shard sharing the shm base segments, query failover on worker death,
  replicated ingest, restart-with-replay;
* :mod:`~repro.service.watchdog` — :class:`Watchdog`: background
  heartbeat/liveness monitor that restarts dead or hung replicas;
* :mod:`~repro.service.requests` — the typed request/response API, which
  doubles as the canonical versioned wire schema (``to_json``/``from_json``
  codecs, :class:`RequestError` decode-time validation);
* :mod:`~repro.service.service` — :class:`QueryService`: caching, stats,
  ingestion, and the exact k-way/union/sum merges;
* :mod:`~repro.service.server` — the asyncio TCP front-end
  (length-prefixed JSON frames, version handshake, concurrent clients,
  graceful shutdown) behind ``repro serve --listen``.

Quickstart (the unified client API — :mod:`repro.client`)::

    from repro import QueryService, ServiceClient, synthetic_database

    db = synthetic_database("geolife", n_trajectories=100, seed=7)
    service = QueryService(db, n_shards=4, executor="process")
    with ServiceClient(service, own_service=True) as client:
        hot = client.range(workload)             # == LocalClient results
        client.ingest(more_trajectories)         # streamed, no rebuild
        counts = client.count(boxes).counts
"""

from repro.service.compaction import (
    COMPACTION_POLICIES,
    CompactionPolicy,
    CompactionResult,
    ExactCompaction,
    SimplifyingCompaction,
    make_compaction,
)
from repro.service.executors import (
    EXECUTORS,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutionError,
    make_executor,
)
from repro.service.requests import (
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    CountRequest,
    CountResponse,
    HistogramRequest,
    HistogramResponse,
    KnnRequest,
    KnnResponse,
    RangeRequest,
    RangeResponse,
    RequestError,
    Response,
    SimilarityRequest,
    SimilarityResponse,
    build_response,
    request_from_json,
    request_to_json,
    response_from_json,
    response_to_json,
)
from repro.service.replication import PipeStats, ReplicaSet
from repro.service.runtime import ShardRuntime
from repro.service.server import QueryServer, ServerHandle, serve_in_thread
from repro.service.watchdog import Watchdog
from repro.service.service import (
    QueryService,
    ServiceStats,
    knn_shard_lower_bound,
)
from repro.service.sharding import (
    PARTITIONERS,
    HashPartitioner,
    Shard,
    ShardManager,
    ShardSnapshot,
    SpatialPartitioner,
)

__all__ = [
    "QueryService",
    "ServiceStats",
    "knn_shard_lower_bound",
    "ShardManager",
    "Shard",
    "ShardSnapshot",
    "ShardRuntime",
    "HashPartitioner",
    "SpatialPartitioner",
    "SerialShardExecutor",
    "ProcessShardExecutor",
    "ShardExecutionError",
    "ReplicaSet",
    "PipeStats",
    "Watchdog",
    "make_executor",
    "EXECUTORS",
    "PARTITIONERS",
    "CompactionPolicy",
    "CompactionResult",
    "ExactCompaction",
    "SimplifyingCompaction",
    "make_compaction",
    "COMPACTION_POLICIES",
    "RangeRequest",
    "CountRequest",
    "HistogramRequest",
    "KnnRequest",
    "SimilarityRequest",
    "Response",
    "RangeResponse",
    "CountResponse",
    "HistogramResponse",
    "KnnResponse",
    "SimilarityResponse",
    "REQUEST_TYPES",
    "PROTOCOL_VERSION",
    "RequestError",
    "build_response",
    "request_to_json",
    "request_from_json",
    "response_to_json",
    "response_from_json",
    "QueryServer",
    "ServerHandle",
    "serve_in_thread",
]
