"""Pluggable compaction policies for the shard runtimes' base tier.

A :class:`~repro.service.runtime.ShardRuntime` periodically folds its
pending tier into a fresh immutable base (LSM-style). *What* the rebuilt
base contains is this module's concern: a :class:`CompactionPolicy` takes
the staged (merged) base database and returns a :class:`CompactionResult`
— the database to publish plus per-trajectory keep-masks, point/byte
accounting (via :func:`repro.data.codec.storage_report`), and error stats.

Two policies ship:

* :class:`ExactCompaction` — the default; returns the staged database
  unchanged, so the runtime's rebuild is bit-identical to the
  pre-policy behavior (property-tested in ``tests/test_compaction.py``).
* :class:`SimplifyingCompaction` — the paper's algorithms as the storage
  engine: each base rebuild routes the *cold* tier through a
  :class:`~repro.baselines.registry.Simplifier` (RL4QDTS, uniform, or
  greedy QDTS), optionally refined under a per-trajectory error budget.
  The *hot* pending tier is never touched — trajectories stay exact
  until their first fold into the base.

Error-budget semantics: ``error_budget`` is an upper bound on the
per-trajectory simplification error (Eq. 2 of the paper — the max over
simplified segments of the chosen measure from
:mod:`repro.errors.measures`, SED by default), *per compaction pass*
relative to the tier content being folded. After the simplifier proposes
kept points at the configured ratio, :func:`refine_to_budget` splits any
anchor segment whose error exceeds the budget, re-inserting the worst
interior point, until every segment satisfies the bound. The refinement
is monotone: a smaller budget keeps a superset of the points a larger
budget keeps, so storage is non-increasing and the error bound
non-decreasing in the budget. ``error_budget <= 0`` degenerates to exact
(every point kept); ``error_budget=None`` accepts the simplifier's
proposal as-is (ratio-only compaction).

Policies travel to process-executor workers inside the pickled runtime
kwargs, so every policy must be picklable — an
:class:`~repro.baselines.registry.RLSimplifier` built from a saved model
path re-loads the model lazily on the worker side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.data.codec import RAW_POINT_BYTES, storage_report
from repro.data.database import TrajectoryDatabase
from repro.errors.measures import MEASURES, ped_point_errors, sed_point_errors
from repro.errors.segment import trajectory_error

#: Policy names accepted by ``QueryService(compaction=...)`` and the CLI.
COMPACTION_POLICIES = ("exact", "uniform", "greedy", "rl")


@dataclass(frozen=True)
class CompactionResult:
    """One compaction pass: the database to publish, plus accounting.

    ``keep_masks`` holds one boolean mask per input trajectory (True =
    point kept); ``bytes_before``/``bytes_after`` are delta-encoded sizes
    from :func:`repro.data.codec.storage_report` when the policy measures
    them, raw ``24 B/point`` sizes otherwise. ``max_error`` is the largest
    per-trajectory simplification error introduced by this pass (0.0 for
    an exact pass), measured with ``measure``.
    """

    policy: str
    database: TrajectoryDatabase = field(repr=False)
    keep_masks: tuple[np.ndarray, ...] = field(repr=False)
    points_before: int
    points_after: int
    bytes_before: int
    bytes_after: int
    max_error: float
    error_budget: float | None
    measure: str
    elapsed_s: float

    @property
    def points_dropped(self) -> int:
        return self.points_before - self.points_after

    @property
    def bytes_saved(self) -> int:
        return self.bytes_before - self.bytes_after

    def counters(self) -> dict:
        """Plain-dict accounting (picklable/JSON-able; crosses the worker
        pipe back to :class:`~repro.service.service.ServiceStats`)."""
        return {
            "policy": self.policy,
            "points_before": self.points_before,
            "points_after": self.points_after,
            "points_dropped": self.points_dropped,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "max_error": self.max_error,
            "elapsed_s": self.elapsed_s,
        }


def refine_to_budget(
    points: np.ndarray,
    kept: list[int],
    budget: float,
    measure: str = "sed",
) -> list[int]:
    """Re-insert points until every anchor segment's error is ``<= budget``.

    Starts from a proposed kept-index set (which must contain both
    endpoints) and recursively splits any anchor ``p_s p_e`` whose
    segment error under ``measure`` exceeds ``budget``, at the interior
    point with the largest synchronized deviation (SED/PED) or at the gap
    midpoint for segment-valued measures (DAD/SAD). ``budget <= 0`` keeps
    every point. The split point for a given gap does not depend on the
    budget, so the kept set under a smaller budget is a superset of the
    kept set under a larger one (monotonicity).
    """
    if budget <= 0.0:
        return list(range(len(points)))
    try:
        error_fn = MEASURES[measure]
    except KeyError:
        raise ValueError(
            f"unknown measure {measure!r}; choose from {sorted(MEASURES)}"
        ) from None
    out = sorted(set(int(i) for i in kept))
    stack = [(s, e) for s, e in zip(out, out[1:]) if e - s >= 2]
    while stack:
        s, e = stack.pop()
        if error_fn(points, s, e) <= budget:
            continue
        if measure in ("sed", "ped"):
            errors = (
                sed_point_errors(points, s, e)
                if measure == "sed"
                else ped_point_errors(points, s, e)
            )
            split = s + 1 + int(np.argmax(errors))
        else:
            split = (s + e) // 2
        out.append(split)
        if split - s >= 2:
            stack.append((s, split))
        if e - split >= 2:
            stack.append((split, e))
    return sorted(out)


class CompactionPolicy:
    """Protocol + base class: turn a staged base database into the base to
    publish.

    Subclasses implement :meth:`compact`. ``is_exact`` advertises that the
    policy is the identity (the runtime then skips the construction-time
    pass, preserving the zero-copy snapshot mapping exactly).
    """

    name: str = "abstract"
    is_exact: bool = False

    def compact(
        self, db: TrajectoryDatabase, budget: float | None = None
    ) -> CompactionResult:
        raise NotImplementedError

    def spec(self) -> dict:
        """Describe-able policy configuration (service ``describe()``)."""
        return {"policy": self.name}


class ExactCompaction(CompactionPolicy):
    """The identity policy: publish the staged base unchanged.

    Bit-identical to the pre-policy rebuild — the result's ``database``
    *is* the staged database object, so the runtime republishes the very
    same arrays. Byte accounting defaults to the raw 24 B/point size
    (``measure_bytes=True`` runs the delta codec instead; compaction then
    pays one O(N) encode pass purely for reporting).
    """

    name = "exact"
    is_exact = True

    def __init__(self, measure_bytes: bool = False) -> None:
        self.measure_bytes = measure_bytes

    def compact(
        self, db: TrajectoryDatabase, budget: float | None = None
    ) -> CompactionResult:
        start = time.perf_counter()
        n_points = db.total_points
        nbytes = (
            storage_report(db).encoded_bytes
            if self.measure_bytes
            else RAW_POINT_BYTES * n_points
        )
        return CompactionResult(
            policy=self.name,
            database=db,
            keep_masks=tuple(
                np.ones(len(t), dtype=bool) for t in db.trajectories
            ),
            points_before=n_points,
            points_after=n_points,
            bytes_before=nbytes,
            bytes_after=nbytes,
            max_error=0.0,
            error_budget=budget,
            measure="sed",
            elapsed_s=time.perf_counter() - start,
        )


class SimplifyingCompaction(CompactionPolicy):
    """Route the cold base tier through a simplifier on every rebuild.

    Parameters
    ----------
    simplifier:
        A :class:`~repro.baselines.registry.Simplifier` (or a name from
        :data:`~repro.baselines.registry.SIMPLIFIERS`) proposing kept
        points at ``ratio``.
    error_budget:
        Per-trajectory error bound (see the module docstring). ``None``
        accepts the proposal as-is; ``<= 0`` keeps everything (exact).
    ratio:
        Target compression ratio of the simplifier's proposal.
    measure:
        Error measure from :data:`repro.errors.measures.MEASURES` used
        for both the budget refinement and the reported ``max_error``.
    """

    is_exact = False

    def __init__(
        self,
        simplifier,
        error_budget: float | None = None,
        ratio: float = 0.25,
        measure: str = "sed",
    ) -> None:
        from repro.baselines.registry import make_simplifier

        if measure not in MEASURES:
            raise ValueError(
                f"unknown measure {measure!r}; choose from {sorted(MEASURES)}"
            )
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
        self.simplifier = make_simplifier(simplifier)
        self.error_budget = None if error_budget is None else float(error_budget)
        self.ratio = float(ratio)
        self.measure = measure
        self.name = self.simplifier.name

    def spec(self) -> dict:
        return {
            "policy": self.name,
            "error_budget": self.error_budget,
            "ratio": self.ratio,
            "measure": self.measure,
        }

    def compact(
        self, db: TrajectoryDatabase, budget: float | None = None
    ) -> CompactionResult:
        start = time.perf_counter()
        budget = self.error_budget if budget is None else float(budget)
        points_before = db.total_points
        bytes_before = storage_report(db).encoded_bytes
        if budget is not None and budget <= 0.0:
            kept_lists = [list(range(len(t))) for t in db.trajectories]
        else:
            kept_lists = self.simplifier.keep_indices(db, self.ratio)
            if budget is not None:
                kept_lists = [
                    refine_to_budget(t.points, kept, budget, self.measure)
                    for t, kept in zip(db.trajectories, kept_lists)
                ]
        simplified = TrajectoryDatabase(
            [t.subsample(kept) for t, kept in zip(db.trajectories, kept_lists)]
        )
        masks = []
        max_error = 0.0
        for t, kept in zip(db.trajectories, kept_lists):
            mask = np.zeros(len(t), dtype=bool)
            mask[np.asarray(kept, dtype=np.intp)] = True
            masks.append(mask)
            if len(kept) < len(t):
                max_error = max(
                    max_error, trajectory_error(t, kept, self.measure)
                )
        return CompactionResult(
            policy=self.name,
            database=simplified,
            keep_masks=tuple(masks),
            points_before=points_before,
            points_after=simplified.total_points,
            bytes_before=bytes_before,
            bytes_after=storage_report(simplified).encoded_bytes,
            max_error=max_error,
            error_budget=budget,
            measure=self.measure,
            elapsed_s=time.perf_counter() - start,
        )


def make_compaction(
    spec,
    *,
    error_budget: float | None = None,
    ratio: float = 0.25,
    measure: str = "sed",
    model=None,
) -> CompactionPolicy:
    """Build a policy from a name, an instance, or ``None`` (exact).

    ``spec`` is a name from :data:`COMPACTION_POLICIES`, an existing
    :class:`CompactionPolicy` (returned unchanged — the remaining kwargs
    must then be left at their defaults), or ``None``/``"exact"`` for the
    default. ``model`` supplies a trained :class:`~repro.core.rl4qdts.RL4QDTS`
    instance or a saved ``.npz`` path for ``spec="rl"``.
    """
    if spec is None or (isinstance(spec, str) and spec == "exact"):
        return ExactCompaction()
    if isinstance(spec, CompactionPolicy):
        return spec
    if isinstance(spec, str):
        from repro.baselines.registry import make_simplifier

        return SimplifyingCompaction(
            make_simplifier(spec, model=model),
            error_budget=error_budget,
            ratio=ratio,
            measure=measure,
        )
    raise ValueError(
        f"unknown compaction policy {spec!r}; choose from {COMPACTION_POLICIES}"
    )


__all__ = [
    "COMPACTION_POLICIES",
    "CompactionPolicy",
    "CompactionResult",
    "ExactCompaction",
    "SimplifyingCompaction",
    "make_compaction",
    "refine_to_budget",
]
