"""Asyncio TCP front-end for the sharded query service.

Wire protocol (spoken by :class:`repro.client.RemoteClient`):

* **Framing** — every message is one length-prefixed JSON frame: a 4-byte
  big-endian unsigned length followed by that many bytes of UTF-8 JSON.
  Frames above :data:`MAX_FRAME_BYTES` are refused (the connection closes;
  an unbounded length prefix would let one client exhaust memory).
* **Handshake** — the client's first frame must be
  ``{"type": "hello", "version": PROTOCOL_VERSION}``; the server answers
  with its own hello carrying serving metadata. A version mismatch is
  answered with a structured error frame and the connection closes — no
  query traffic crosses an incompatible schema.
* **Requests** — ``{"type": "request", "id": n, "request": {...}}`` with
  the request body in the canonical wire schema
  (:mod:`repro.service.requests`). The reply echoes ``id``
  (``{"type": "response", "id": n, "response": {...}}``), so clients can
  assert nothing was dropped or reordered. ``{"type": "ingest", "id": n,
  "trajectories": [...]}`` streams a batch in; ``{"type": "describe"}``
  returns serving metadata; ``{"type": "bye"}`` closes cleanly.
* **Errors** — malformed frames and invalid requests raise
  :class:`~repro.service.requests.RequestError` *at decode time* and are
  answered with ``{"type": "error", "id": n, "error": {"type", "message"}}``
  — the connection survives, and one client's garbage never disturbs
  another's stream.

Concurrency: each connection is one asyncio task, but query execution is
**off-loop** — requests run on a single worker thread
(`run_in_executor`), so the event loop keeps accepting connections and
reading frames while a query computes, and service access stays
serialized (``QueryService`` is not thread-safe). Per-connection replies
are inherently ordered because a handler awaits each request before
reading the next frame.

Shutdown is graceful: :meth:`QueryServer.stop` stops accepting, cancels
the open connection handlers, drains the worker thread, and wakes
:meth:`QueryServer.serve_forever`. :func:`serve_in_thread` packages all
of that for tests, benchmarks, and examples that need a loopback server
next to synchronous client code.
"""

from __future__ import annotations

import asyncio
import json
import struct
import threading
import time

from repro.service.requests import (
    PROTOCOL_VERSION,
    RequestError,
    request_from_json,
    response_to_json,
    trajectory_from_json,
)

#: Length-prefix header: 4-byte big-endian unsigned frame length.
FRAME_HEADER = struct.Struct(">I")

#: Hard per-frame cap (64 MiB): framing stays sane even against garbage.
MAX_FRAME_BYTES = 64 << 20


def encode_frame(obj) -> bytes:
    """One wire frame: length prefix + compact JSON."""
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES")
    return FRAME_HEADER.pack(len(data)) + data


class _ConnectionClosed(Exception):
    """Internal: the peer went away (clean EOF or mid-frame cut)."""


async def _read_frame_bytes(reader: asyncio.StreamReader) -> bytes:
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
        (length,) = FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise RequestError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        raise _ConnectionClosed from None


class QueryServer:
    """Asyncio TCP server wrapping one :class:`QueryService`.

    The server borrows the service: callers that build a service for a
    server are expected to close it after :meth:`stop` (the CLI and
    :func:`serve_in_thread` do).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._stopped: asyncio.Event | None = None
        self._pool = None
        #: Served/error frame counters, for banners and the CI smoke.
        self.frames_served = 0
        self.error_frames = 0

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind and start accepting connections (idempotent-free: call once)."""
        import concurrent.futures

        # One worker thread: queries run off-loop (the event loop stays
        # responsive) while QueryService access stays serialized — the
        # service's LRU/stats/executor are not thread-safe.
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def host(self) -> str:
        return self._server.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, close connections, drain."""
        if self._stopped is None or self._stopped.is_set():
            return
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._pool.shutdown(wait=True)
        self._stopped.set()

    # -------------------------------------------------------------- connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            if await self._handshake(reader, writer):
                await self._serve_frames(reader, writer)
        except (_ConnectionClosed, ConnectionResetError, BrokenPipeError):
            pass  # peer vanished; nothing to answer
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------- worker-thread ops
    def _traced_execute(self, request, trace_id, submitted_at: float):
        """Run one request on the worker thread, first recording the time
        the frame spent queued behind earlier work (the ``queue`` span)."""
        tracer = getattr(self._service, "tracer", None)
        if tracer is not None:
            tracer.record(
                trace_id,
                "queue",
                time.perf_counter() - submitted_at,
                kind=request.kind,
            )
        if trace_id is None:
            return self._service.execute(request)
        return self._service.execute(request, trace_id=trace_id)

    def _traced_ingest(self, trajectories, trace_id):
        if trace_id is None:
            return self._service.ingest(trajectories)
        return self._service.ingest(trajectories, trace_id=trace_id)

    def _metrics_body(self) -> dict:
        return self._service.metrics_report()

    async def metrics_snapshot(self) -> dict:
        """The service's metrics report, produced on the worker thread.

        For in-loop callers (the CLI's ``--metrics-interval`` logger):
        service access must stay serialized with request execution, so the
        snapshot queues behind in-flight queries like any other frame.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self._metrics_body)

    async def _send(self, writer: asyncio.StreamWriter, obj) -> None:
        writer.write(encode_frame(obj))
        await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: Exception, rid
    ) -> None:
        self.error_frames += 1
        await self._send(
            writer,
            {
                "type": "error",
                "id": rid,
                "error": {"type": type(exc).__name__, "message": str(exc)},
            },
        )

    async def _handshake(self, reader, writer) -> bool:
        """Exchange hellos; False (after an error frame) on any mismatch."""
        try:
            frame = json.loads(await _read_frame_bytes(reader))
        except (json.JSONDecodeError, UnicodeDecodeError, RequestError) as exc:
            await self._send_error(writer, RequestError(f"bad handshake: {exc}"), None)
            return False
        if not isinstance(frame, dict) or frame.get("type") != "hello":
            await self._send_error(
                writer,
                RequestError("the first frame must be a 'hello' handshake"),
                None,
            )
            return False
        if frame.get("version") != PROTOCOL_VERSION:
            await self._send_error(
                writer,
                RequestError(
                    f"unsupported protocol version {frame.get('version')!r} "
                    f"(server speaks {PROTOCOL_VERSION})"
                ),
                None,
            )
            return False
        manager = self._service.manager
        compaction = getattr(self._service, "compaction", None)
        await self._send(
            writer,
            {
                "type": "hello",
                "version": PROTOCOL_VERSION,
                "server": {
                    "n_shards": manager.n_shards,
                    "executor": self._service.executor_name,
                    "partitioner": manager.partitioner.name,
                    "index": self._service.index,
                    "epoch": manager.epoch,
                    "trajectories": manager.n_trajectories,
                    "points": manager.total_points,
                    # Additive in PROTOCOL_VERSION 1: clients that predate
                    # compaction policies simply ignore the key.
                    "compaction": None if compaction is None else compaction.spec(),
                },
            },
        )
        return True

    async def _serve_frames(self, reader, writer) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                raw = await _read_frame_bytes(reader)
            except RequestError as exc:
                # A framing violation (oversize length prefix): the stream
                # can no longer be trusted, so answer and close.
                await self._send_error(writer, exc, None)
                return
            rid = None
            try:
                try:
                    frame = json.loads(raw)
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise RequestError(f"malformed JSON frame: {exc}") from None
                if not isinstance(frame, dict):
                    raise RequestError("a frame must be a JSON object")
                rid = frame.get("id")
                ftype = frame.get("type")
                if ftype == "bye":
                    await self._send(writer, {"type": "bye"})
                    return
                trace_id = frame.get("trace")
                if trace_id is not None and not isinstance(trace_id, str):
                    raise RequestError(
                        f"trace must be a string or absent, got {trace_id!r}"
                    )
                if ftype == "request":
                    request = request_from_json(frame.get("request"))
                    response = await loop.run_in_executor(
                        self._pool,
                        self._traced_execute,
                        request,
                        trace_id,
                        time.perf_counter(),
                    )
                    body = response_to_json(response)
                elif ftype == "ingest":
                    batch = frame.get("trajectories")
                    if not isinstance(batch, list):
                        raise RequestError(
                            "'trajectories' must be an array of trajectories"
                        )
                    trajectories = [trajectory_from_json(t) for t in batch]
                    added = await loop.run_in_executor(
                        self._pool,
                        self._traced_ingest,
                        trajectories,
                        trace_id,
                    )
                    body = {
                        "v": PROTOCOL_VERSION,
                        "kind": "ingest",
                        "added": added,
                        "epoch": self._service.manager.epoch,
                    }
                elif ftype == "describe":
                    info = await loop.run_in_executor(
                        self._pool, self._service.describe
                    )
                    body = {"v": PROTOCOL_VERSION, "kind": "describe", "info": info}
                elif ftype == "metrics":
                    report = await loop.run_in_executor(
                        self._pool, self._metrics_body
                    )
                    body = {
                        "v": PROTOCOL_VERSION,
                        "kind": "metrics",
                        "metrics": report,
                    }
                else:
                    raise RequestError(f"unknown frame type {ftype!r}")
                # Encode INSIDE the guarded region: an unencodable result
                # (e.g. a response above the frame cap) must also become an
                # error frame, not a dropped connection.
                out = encode_frame({"type": "response", "id": rid, "response": body})
            except RequestError as exc:
                await self._send_error(writer, exc, rid)
                continue
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # Per-connection isolation: an execution failure becomes a
                # structured error frame, never a dropped connection.
                await self._send_error(writer, exc, rid)
                continue
            self.frames_served += 1
            writer.write(out)
            await writer.drain()


class ServerHandle:
    """A running loopback server on a background thread (see
    :func:`serve_in_thread`)."""

    def __init__(self, thread, loop, server, service, close_service) -> None:
        self._thread = thread
        self._loop = loop
        self.server = server
        self.service = service
        self._close_service = close_service

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join its thread (idempotent)."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            )
            future.result(timeout=timeout)
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError("server thread did not stop in time")
        if self._close_service:
            self.service.close()
            self._close_service = False

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    close_service: bool = False,
) -> ServerHandle:
    """Start a :class:`QueryServer` on a dedicated event-loop thread.

    Returns once the server is listening (``handle.port`` resolves the
    OS-assigned port when ``port=0``). ``close_service=True`` also closes
    the wrapped service on :meth:`ServerHandle.stop`.
    """
    started = threading.Event()
    holder: dict = {}

    def _run() -> None:
        async def _main() -> None:
            server = QueryServer(service, host, port)
            try:
                await server.start()
            except Exception as exc:  # e.g. port in use
                holder["error"] = exc
                started.set()
                return
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_forever()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-server", daemon=True)
    thread.start()
    started.wait()
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(
        thread, holder["loop"], holder["server"], service, close_service
    )


__all__ = [
    "QueryServer",
    "ServerHandle",
    "serve_in_thread",
    "encode_frame",
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
]
