"""Asyncio TCP front-end for the sharded query service.

Wire protocol (spoken by :class:`repro.client.RemoteClient` /
:class:`repro.client.AsyncRemoteClient`):

* **Framing** — every message is one length-prefixed JSON frame: a 4-byte
  big-endian unsigned length followed by that many bytes of UTF-8 JSON.
  Frames above :data:`MAX_FRAME_BYTES` are refused (the connection closes;
  an unbounded length prefix would let one client exhaust memory).
* **Handshake** — the client's first frame must be
  ``{"type": "hello", "version": PROTOCOL_VERSION}``; the server answers
  with its own hello carrying serving metadata. A version mismatch is
  answered with a structured error frame and the connection closes — no
  query traffic crosses an incompatible schema. A server started with an
  ``auth_token`` additionally requires ``"token": <token>`` in the
  client hello; a missing or wrong token is answered with an
  ``AuthError`` error frame and the connection closes.
* **Requests** — ``{"type": "request", "id": n, "request": {...}}`` with
  the request body in the canonical wire schema
  (:mod:`repro.service.requests`). The reply echoes ``id``
  (``{"type": "response", "id": n, "response": {...}}``). **Responses are
  matched by id, not by order**: independent requests execute on a worker
  pool and complete out of order, so a pipelining client must key its
  in-flight table on the echoed id (the sync client pipeline depth is 1,
  which degenerates to the old in-order behaviour). ``{"type": "ingest",
  "id": n, "trajectories": [...]}`` streams a batch in; ``{"type":
  "describe"}`` returns serving metadata; ``{"type": "bye"}`` closes
  cleanly after in-flight work drains.
* **Errors** — malformed frames and invalid requests raise
  :class:`~repro.service.requests.RequestError` *at decode time* and are
  answered with ``{"type": "error", "id": n, "error": {"type", "message"}}``
  — the connection survives, and one client's garbage never disturbs
  another's stream.
* **Backpressure** — the server admits at most ``max_inflight`` decoded
  frames into the worker pool at once. A frame arriving above the bound
  is answered *immediately* with a typed ``{"error": {"type":
  "Overloaded"}}`` frame — it never executes, so retrying it is safe for
  every operation including ingest.

Concurrency: each connection is one asyncio task reading frames; every
admitted frame becomes its own loop task that off-loads execution to a
sized worker pool (``workers`` threads), so independent requests from one
pipelined connection — or from many connections — run concurrently.
Correctness under that pool lives in the service layer: queries share the
epoch lock's read side, ingest takes its write side (see
:class:`~repro.service._sync.RWLock`). Writes of completed responses are
serialized per connection by an :class:`asyncio.Lock` — interleaving two
multi-``write()`` frame sends on one socket would corrupt the stream.

Shutdown is graceful: :meth:`QueryServer.stop` stops accepting, cancels
the open connection handlers, drains the worker pool, and wakes
:meth:`QueryServer.serve_forever`. :func:`serve_in_thread` packages all
of that for tests, benchmarks, and examples that need a loopback server
next to synchronous client code.
"""

from __future__ import annotations

import asyncio
import json
import os
import struct
import threading
import time

from repro.obs.metrics import MetricsRegistry
from repro.service.requests import (
    PROTOCOL_VERSION,
    RequestError,
    request_from_json,
    response_to_json,
    trajectory_from_json,
)

#: Length-prefix header: 4-byte big-endian unsigned frame length.
FRAME_HEADER = struct.Struct(">I")

#: Hard per-frame cap (64 MiB): framing stays sane even against garbage.
MAX_FRAME_BYTES = 64 << 20


def encode_frame(obj) -> bytes:
    """One wire frame: length prefix + compact JSON."""
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise ValueError(f"frame of {len(data)} bytes exceeds MAX_FRAME_BYTES")
    return FRAME_HEADER.pack(len(data)) + data


def default_workers() -> int:
    """Default worker-pool size: the machine's cores, capped at 8."""
    return max(1, min(8, os.cpu_count() or 4))


class _ConnectionClosed(Exception):
    """Internal: the peer went away (clean EOF or mid-frame cut)."""


class _Overloaded(Exception):
    """Internal: admission control refused a frame (maps to the typed
    ``Overloaded`` error frame; the request never executed)."""


async def _read_frame_bytes(reader: asyncio.StreamReader) -> bytes:
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
        (length,) = FRAME_HEADER.unpack(header)
        if length > MAX_FRAME_BYTES:
            raise RequestError(
                f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
            )
        return await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        raise _ConnectionClosed from None


class QueryServer:
    """Asyncio TCP server wrapping one :class:`QueryService`.

    The server borrows the service: callers that build a service for a
    server are expected to close it after :meth:`stop` (the CLI and
    :func:`serve_in_thread` do).

    Parameters
    ----------
    workers:
        Worker-pool threads executing admitted frames concurrently
        (default :func:`default_workers`). ``workers=1`` restores fully
        serialized execution.
    max_inflight:
        Bound on decoded-but-unanswered frames across all connections
        (default ``4 * workers``). Frames above the bound are refused
        with a typed ``Overloaded`` error before execution.
    auth_token:
        When set, client hellos must carry the same token.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int | None = None,
        max_inflight: int | None = None,
        auth_token: str | None = None,
    ) -> None:
        self._service = service
        self._host = host
        self._port = port
        self.workers = default_workers() if workers is None else max(1, int(workers))
        self.max_inflight = (
            4 * self.workers if max_inflight is None else max(1, int(max_inflight))
        )
        self._auth_token = auth_token
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._stopped: asyncio.Event | None = None
        self._pool = None
        #: Decoded frames admitted to the pool and not yet answered
        #: (loop-thread only; admission control compares it to
        #: ``max_inflight``).
        self._inflight = 0
        #: Served/error/refused frame counters, for banners and CI smokes.
        self.frames_served = 0
        self.error_frames = 0
        self.overloaded_frames = 0
        #: Server-side registry surfaced as the ``server`` section of the
        #: wire ``metrics`` report: per-worker-thread execution histograms
        #: plus admission counters. Guarded by ``_registry_lock`` (worker
        #: threads record into it concurrently).
        self.registry = MetricsRegistry()
        self._registry_lock = threading.Lock()
        self._worker_handles: dict = {}

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> None:
        """Bind and start accepting connections (idempotent-free: call once)."""
        import concurrent.futures

        # Execution runs off-loop on a sized pool: the event loop keeps
        # accepting connections and reading frames while queries compute,
        # and independent requests overlap. The QueryService's own locks
        # (epoch RWLock, cache lock, stats lock, per-shard locks) carry
        # the correctness invariants under this pool.
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-serve"
        )
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._port
        )

    @property
    def host(self) -> str:
        return self._server.sockets[0].getsockname()[0]

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` completes."""
        await self._stopped.wait()

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, close connections, drain."""
        if self._stopped is None or self._stopped.is_set():
            return
        self._server.close()
        await self._server.wait_closed()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._pool.shutdown(wait=True)
        self._stopped.set()

    # -------------------------------------------------------------- connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        # Response frames complete out of order on one socket, and a frame
        # send is write()+drain(): without per-connection serialization two
        # completing requests could interleave their bytes mid-frame.
        write_lock = asyncio.Lock()
        pending: set[asyncio.Task] = set()
        try:
            if await self._handshake(reader, writer, write_lock):
                await self._serve_frames(reader, writer, write_lock, pending)
        except (_ConnectionClosed, ConnectionResetError, BrokenPipeError):
            pass  # peer vanished; nothing to answer
        finally:
            for t in pending:
                t.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------- worker-thread ops
    def _record_worker(self, op: str, exec_s: float) -> None:
        """Per-worker-thread execution histogram (``server`` metrics section).

        Instrument handles are memoized per ``(thread, op)`` — the name
        formatting and registry lookups would otherwise run on every
        request of a hot serving loop. The unlocked dict probe is safe:
        a racing first-record for the same key resolves to the same
        registry-owned instruments, so the last cache write is identical.
        """
        worker = threading.current_thread().name
        key = (worker, op)
        handles = self._worker_handles.get(key)
        if handles is None:
            with self._registry_lock:
                handles = (
                    self.registry.histogram(f"worker.{worker}.exec_s"),
                    self.registry.counter(f"worker.{worker}.{op}"),
                )
            self._worker_handles[key] = handles
        hist, counter = handles
        with self._registry_lock:
            hist.record(exec_s)
            counter.inc()

    def _traced_execute(self, request, trace_id, submitted_at: float):
        """Run one request on a worker thread, first recording the time the
        frame spent queued between decode and pickup (``queue`` span +
        the stats queue-wait histogram)."""
        wait_s = time.perf_counter() - submitted_at
        stats = getattr(self._service, "stats", None)
        if stats is not None:
            stats.record_queue_wait(wait_s)
        tracer = getattr(self._service, "tracer", None)
        if tracer is not None:
            tracer.record(trace_id, "queue", wait_s, kind=request.kind)
        start = time.perf_counter()
        try:
            if trace_id is None:
                return self._service.execute(request)
            return self._service.execute(request, trace_id=trace_id)
        finally:
            self._record_worker(request.kind, time.perf_counter() - start)

    def _traced_ingest(self, trajectories, trace_id, submitted_at: float):
        stats = getattr(self._service, "stats", None)
        if stats is not None:
            stats.record_queue_wait(time.perf_counter() - submitted_at)
        start = time.perf_counter()
        try:
            if trace_id is None:
                return self._service.ingest(trajectories)
            return self._service.ingest(trajectories, trace_id=trace_id)
        finally:
            self._record_worker("ingest", time.perf_counter() - start)

    def _metrics_body(self) -> dict:
        report = self._service.metrics_report()
        with self._registry_lock:
            server_section = self.registry.snapshot()
        server_section["workers"] = self.workers
        server_section["max_inflight"] = self.max_inflight
        server_section["frames_served"] = self.frames_served
        server_section["error_frames"] = self.error_frames
        server_section["overloaded_frames"] = self.overloaded_frames
        report["server"] = server_section
        return report

    async def metrics_snapshot(self) -> dict:
        """The service's metrics report, produced on a worker thread.

        For in-loop callers (the CLI's ``--metrics-interval`` logger):
        the snapshot takes the epoch read lock like any query, so it never
        observes a half-applied ingest.
        """
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._pool, self._metrics_body)

    async def _send(
        self, writer: asyncio.StreamWriter, obj, lock: asyncio.Lock
    ) -> None:
        async with lock:
            writer.write(encode_frame(obj))
            await writer.drain()

    async def _send_error(
        self, writer: asyncio.StreamWriter, exc: Exception, rid, lock: asyncio.Lock
    ) -> None:
        if isinstance(exc, _Overloaded):
            error_type = "Overloaded"
            self.overloaded_frames += 1
        else:
            error_type = type(exc).__name__
        self.error_frames += 1
        await self._send(
            writer,
            {
                "type": "error",
                "id": rid,
                "error": {"type": error_type, "message": str(exc)},
            },
            lock,
        )

    async def _handshake(self, reader, writer, write_lock: asyncio.Lock) -> bool:
        """Exchange hellos; False (after an error frame) on any mismatch."""
        try:
            frame = json.loads(await _read_frame_bytes(reader))
        except (json.JSONDecodeError, UnicodeDecodeError, RequestError) as exc:
            await self._send_error(
                writer, RequestError(f"bad handshake: {exc}"), None, write_lock
            )
            return False
        if not isinstance(frame, dict) or frame.get("type") != "hello":
            await self._send_error(
                writer,
                RequestError("the first frame must be a 'hello' handshake"),
                None,
                write_lock,
            )
            return False
        if frame.get("version") != PROTOCOL_VERSION:
            await self._send_error(
                writer,
                RequestError(
                    f"unsupported protocol version {frame.get('version')!r} "
                    f"(server speaks {PROTOCOL_VERSION})"
                ),
                None,
                write_lock,
            )
            return False
        if self._auth_token is not None and frame.get("token") != self._auth_token:
            # A distinct error type: clients must not retry an auth
            # failure the way they retry transient resets. The message
            # never echoes the expected token.
            self.error_frames += 1
            await self._send(
                writer,
                {
                    "type": "error",
                    "id": None,
                    "error": {
                        "type": "AuthError",
                        "message": "missing or invalid auth token",
                    },
                },
                write_lock,
            )
            return False
        manager = self._service.manager
        compaction = getattr(self._service, "compaction", None)
        await self._send(
            writer,
            {
                "type": "hello",
                "version": PROTOCOL_VERSION,
                "server": {
                    "n_shards": manager.n_shards,
                    "executor": self._service.executor_name,
                    "partitioner": manager.partitioner.name,
                    "index": self._service.index,
                    "epoch": manager.epoch,
                    "trajectories": manager.n_trajectories,
                    "points": manager.total_points,
                    # Additive in PROTOCOL_VERSION 1: clients that predate
                    # compaction policies simply ignore the key.
                    "compaction": None if compaction is None else compaction.spec(),
                    # Additive: the serving concurrency contract.
                    "workers": self.workers,
                    "max_inflight": self.max_inflight,
                    # Additive: replica topology (PR 10); 1 for services
                    # that predate replication.
                    "replicas": getattr(self._service, "replicas", 1),
                },
            },
            write_lock,
        )
        return True

    def _admit(self) -> None:
        """Admission control (loop thread): count one in-flight frame or
        refuse with :class:`_Overloaded` — refused frames never execute."""
        if self._inflight >= self.max_inflight:
            raise _Overloaded(
                f"server at max_inflight={self.max_inflight}; "
                "retry after in-flight requests drain"
            )
        self._inflight += 1
        stats = getattr(self._service, "stats", None)
        if stats is not None:
            stats.record_queue_depth(self._inflight)

    async def _run_admitted(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        rid,
        thunk,
        build_body,
    ) -> None:
        """One admitted frame: execute off-loop, answer by id, release the
        admission slot. Runs as its own loop task so the connection's
        reader keeps decoding frames while this one computes."""
        try:
            try:
                result = await thunk()
                # Encode INSIDE the guarded region: an unencodable result
                # (e.g. a response above the frame cap) must also become an
                # error frame, not a dropped connection.
                out = encode_frame(
                    {"type": "response", "id": rid, "response": build_body(result)}
                )
            except asyncio.CancelledError:
                raise
            except RequestError as exc:
                await self._send_error(writer, exc, rid, write_lock)
                return
            except Exception as exc:
                # Per-connection isolation: an execution failure becomes a
                # structured error frame, never a dropped connection.
                await self._send_error(writer, exc, rid, write_lock)
                return
            try:
                async with write_lock:
                    writer.write(out)
                    await writer.drain()
                self.frames_served += 1
            except (ConnectionResetError, BrokenPipeError):
                pass  # peer vanished mid-answer
        finally:
            self._inflight -= 1

    async def _serve_frames(
        self,
        reader,
        writer,
        write_lock: asyncio.Lock,
        pending: set[asyncio.Task],
    ) -> None:
        loop = asyncio.get_running_loop()
        while True:
            try:
                raw = await _read_frame_bytes(reader)
            except RequestError as exc:
                # A framing violation (oversize length prefix): the stream
                # can no longer be trusted, so answer and close.
                await self._send_error(writer, exc, None, write_lock)
                return
            rid = None
            try:
                try:
                    frame = json.loads(raw)
                except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                    raise RequestError(f"malformed JSON frame: {exc}") from None
                if not isinstance(frame, dict):
                    raise RequestError("a frame must be a JSON object")
                rid = frame.get("id")
                ftype = frame.get("type")
                if ftype == "bye":
                    # Drain in-flight work first: every admitted request's
                    # response (or error) is delivered before the goodbye.
                    if pending:
                        await asyncio.gather(*pending, return_exceptions=True)
                    await self._send(writer, {"type": "bye"}, write_lock)
                    return
                trace_id = frame.get("trace")
                if trace_id is not None and not isinstance(trace_id, str):
                    raise RequestError(
                        f"trace must be a string or absent, got {trace_id!r}"
                    )
                submitted_at = time.perf_counter()
                if ftype == "request":
                    request = request_from_json(frame.get("request"))
                    self._admit()

                    def thunk(request=request, trace_id=trace_id, t0=submitted_at):
                        return loop.run_in_executor(
                            self._pool, self._traced_execute, request, trace_id, t0
                        )

                    build_body = response_to_json
                elif ftype == "ingest":
                    batch = frame.get("trajectories")
                    if not isinstance(batch, list):
                        raise RequestError(
                            "'trajectories' must be an array of trajectories"
                        )
                    trajectories = [trajectory_from_json(t) for t in batch]
                    self._admit()

                    def thunk(
                        trajectories=trajectories,
                        trace_id=trace_id,
                        t0=submitted_at,
                    ):
                        return loop.run_in_executor(
                            self._pool,
                            self._traced_ingest,
                            trajectories,
                            trace_id,
                            t0,
                        )

                    def build_body(added):
                        return {
                            "v": PROTOCOL_VERSION,
                            "kind": "ingest",
                            "added": added,
                            "epoch": self._service.manager.epoch,
                        }

                elif ftype == "describe":
                    self._admit()

                    def thunk():
                        return loop.run_in_executor(
                            self._pool, self._service.describe
                        )

                    def build_body(info):
                        return {
                            "v": PROTOCOL_VERSION,
                            "kind": "describe",
                            "info": info,
                        }

                elif ftype == "metrics":
                    self._admit()

                    def thunk():
                        return loop.run_in_executor(self._pool, self._metrics_body)

                    def build_body(report):
                        return {
                            "v": PROTOCOL_VERSION,
                            "kind": "metrics",
                            "metrics": report,
                        }

                else:
                    raise RequestError(f"unknown frame type {ftype!r}")
            except (RequestError, _Overloaded) as exc:
                await self._send_error(writer, exc, rid, write_lock)
                continue
            task = asyncio.ensure_future(
                self._run_admitted(writer, write_lock, rid, thunk, build_body)
            )
            pending.add(task)
            task.add_done_callback(pending.discard)


class ServerHandle:
    """A running loopback server on a background thread (see
    :func:`serve_in_thread`)."""

    def __init__(self, thread, loop, server, service, close_service) -> None:
        self._thread = thread
        self._loop = loop
        self.server = server
        self.service = service
        self._close_service = close_service

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop the server and join its thread (idempotent)."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.server.stop(), self._loop
            )
            future.result(timeout=timeout)
            self._thread.join(timeout=timeout)
            if self._thread.is_alive():
                raise RuntimeError("server thread did not stop in time")
        if self._close_service:
            self.service.close()
            self._close_service = False

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_in_thread(
    service,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    close_service: bool = False,
    workers: int | None = None,
    max_inflight: int | None = None,
    auth_token: str | None = None,
) -> ServerHandle:
    """Start a :class:`QueryServer` on a dedicated event-loop thread.

    Returns once the server is listening (``handle.port`` resolves the
    OS-assigned port when ``port=0``). ``close_service=True`` also closes
    the wrapped service on :meth:`ServerHandle.stop`. ``workers``,
    ``max_inflight``, and ``auth_token`` forward to :class:`QueryServer`.
    """
    started = threading.Event()
    holder: dict = {}

    def _run() -> None:
        async def _main() -> None:
            server = QueryServer(
                service,
                host,
                port,
                workers=workers,
                max_inflight=max_inflight,
                auth_token=auth_token,
            )
            try:
                await server.start()
            except Exception as exc:  # e.g. port in use
                holder["error"] = exc
                started.set()
                return
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await server.serve_forever()

        asyncio.run(_main())

    thread = threading.Thread(target=_run, name="repro-server", daemon=True)
    thread.start()
    started.wait()
    if "error" in holder:
        raise holder["error"]
    return ServerHandle(
        thread, holder["loop"], holder["server"], service, close_service
    )


__all__ = [
    "QueryServer",
    "ServerHandle",
    "serve_in_thread",
    "encode_frame",
    "default_workers",
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
]
