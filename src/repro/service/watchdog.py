"""Background liveness monitor: detect dead/hung replicas and restart them.

The :class:`Watchdog` closes the fault-tolerance loop around an executor's
replica sets. Failover (queries retrying on a live sibling) already keeps
requests flowing the instant a worker dies; what failover cannot do is put
the replica *back* — a shard bleeding replicas eventually has none left.
The watchdog runs a daemon thread that every ``interval`` seconds:

1. **heartbeats** idle replicas (``executor.ping(deadline)``): a worker
   whose process is alive but whose serve loop is stuck past ``deadline``
   seconds is retired — process liveness alone cannot see a hang;
2. **probes liveness** (``executor.liveness()``): silently exited
   processes are retired without waiting for the next scatter's EOF;
3. **restarts** every retired replica (``executor.restart_dead()``): a
   fresh worker is spawned from the shard's current base snapshot, catches
   up by replaying the logged ingest batches, and rejoins the rotation
   (restart latency is recorded by the replica set into
   ``replication.restart_latency_s``).

The poll deliberately composes the executor's public fault-tolerance
surface — anything implementing ``ping``/``liveness``/``restart_dead``
(the serial executor's are no-ops) can be watched, and a poll can be
driven synchronously via :meth:`Watchdog.poll_once` in tests.

Restart and the service's epoch surgery exclude each other: the service
wraps ``restart_dead`` in its epoch *read* lock via the ``lock`` hook, so
a watchdog restart never races an online split/merge republish (which
holds the write side). Poll errors are counted, never raised — a watchdog
must outlive the faults it exists to repair.
"""

from __future__ import annotations

import contextlib
import threading

from repro.obs.metrics import MetricsRegistry


class Watchdog:
    """Periodic ping → liveness → restart loop over an executor.

    Parameters
    ----------
    executor:
        Any object with ``ping(deadline)``, ``liveness()``, and
        ``restart_dead()`` (both built-in executors qualify).
    interval:
        Seconds between polls (the detection latency ceiling for a
        silently dead replica).
    deadline:
        Seconds a heartbeat may take before the replica is declared hung.
    registry, registry_lock:
        Optional shared metrics registry (``watchdog.ticks``,
        ``watchdog.errors``, ``watchdog.hung_replicas``,
        ``watchdog.restarts`` counters) and the lock guarding it.
    lock:
        Optional context-manager factory entered around the
        restart phase of each poll. The service passes its epoch read
        lock so restarts serialize against online split/merge surgery.
    """

    def __init__(
        self,
        executor,
        interval: float = 1.0,
        deadline: float = 5.0,
        registry: MetricsRegistry | None = None,
        registry_lock: threading.Lock | None = None,
        lock=None,
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self.executor = executor
        self.interval = float(interval)
        self.deadline = float(deadline)
        self._registry = registry
        self._registry_lock = registry_lock or threading.Lock()
        self._lock = lock if lock is not None else contextlib.nullcontext
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks = 0
        self.errors = 0
        self.hung_replicas = 0
        self.restarts = 0
        self.last_error: str | None = None

    def _count(self, name: str, amount: int = 1) -> None:
        if self._registry is None or not amount:
            return
        with self._registry_lock:
            self._registry.counter(name).inc(amount)

    def poll_once(self) -> dict:
        """One detection + repair pass; returns what it found and fixed.

        Safe to call directly (tests, manual repair); the background
        thread calls exactly this. Never raises: a failed restart is
        counted and retried on the next poll.
        """
        self.ticks += 1
        self._count("watchdog.ticks")
        hung = 0
        restarted = 0
        probe: dict = {}
        try:
            hung = self.executor.ping(self.deadline)
            probe = self.executor.liveness()
            if probe.get("replicas_live", 0) < probe.get("replicas_total", 0):
                with self._lock():
                    restarted = self.executor.restart_dead()
        except Exception as exc:
            # The executor may be mid-close, or a restart may have failed
            # (e.g. the snapshot store is gone). Record and keep polling —
            # the watchdog must outlive the faults it repairs.
            self.errors += 1
            self.last_error = f"{type(exc).__name__}: {exc}"
            self._count("watchdog.errors")
        self.hung_replicas += hung
        self.restarts += restarted
        self._count("watchdog.hung_replicas", hung)
        self._count("watchdog.restarts", restarted)
        return {
            "tick": self.ticks,
            "hung": hung,
            "restarted": restarted,
            "dead_shards": probe.get("dead_shards", []),
            "replicas_live": probe.get("replicas_live"),
        }

    # ------------------------------------------------------------ lifecycle
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Watchdog":
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        # First wait, then poll: a service that starts and stops quickly
        # (tests, CLI one-shots) pays no poll at all.
        while not self._stop.wait(self.interval):
            self.poll_once()

    def stop(self) -> None:
        """Stop the poll thread (idempotent; joins the in-flight poll)."""
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=max(10.0, 2 * self.deadline))
            self._thread = None

    def stats(self) -> dict:
        return {
            "running": self.running,
            "interval_s": self.interval,
            "deadline_s": self.deadline,
            "ticks": self.ticks,
            "errors": self.errors,
            "hung_replicas": self.hung_replicas,
            "restarts": self.restarts,
            "last_error": self.last_error,
        }

    def __enter__(self) -> "Watchdog":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


__all__ = ["Watchdog"]
