"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the full pipeline so the library is usable without writing
code:

* ``generate``  — write a synthetic profile database to .npz/.csv
* ``stats``     — print Table-I style statistics of a database
* ``simplify``  — simplify a database with RL4QDTS or any named baseline
* ``evaluate``  — score a simplified database against its original on the
  five query tasks
* ``baselines`` — list the 25 baseline names
* ``encode``    — pack a database into the delta-varint binary codec
* ``decode``    — unpack a codec blob back into .npz/.csv/.geojson
* ``workload``  — generate a range-query workload and save it as JSON
* ``serve``     — run the sharded query service over a JSONL request file
  (range / count / histogram / kNN / similarity requests plus streaming
  ``ingest`` of additional database files), printing responses and
  latency/cache statistics — or, with ``--listen HOST:PORT``, as an
  asyncio TCP server speaking the length-prefixed JSON frame protocol
* ``query``     — one-shot sharded query against a database
* ``client``    — one-shot query against a running ``serve --listen``
  server through :class:`repro.client.RemoteClient`

Example::

    python -m repro generate --profile chengdu -n 100 --out db.npz
    python -m repro simplify --db db.npz --ratio 0.05 --method RL4QDTS \
        --out small.npz
    python -m repro evaluate --original db.npz --simplified small.npz
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import all_baselines, get_baseline, simplify_database
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.data import (
    dataset_statistics,
    load_database,
    save_database,
    synthetic_database,
)
from repro.eval import ALL_TASKS, QueryAccuracyEvaluator, QuerySuiteConfig


def _cmd_generate(args: argparse.Namespace) -> int:
    db = synthetic_database(
        args.profile,
        n_trajectories=args.n_trajectories,
        points_scale=args.points_scale,
        seed=args.seed,
    )
    save_database(db, args.out)
    print(f"wrote {db} to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    for key, value in dataset_statistics(db).as_row().items():
        print(f"{key:<26}{value}")
    return 0


def _cmd_baselines(_args: argparse.Namespace) -> int:
    for spec in all_baselines():
        print(spec.name)
    return 0


def _cmd_simplify(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    if args.method == "RL4QDTS":
        if args.model:
            model = RL4QDTS.load(args.model)
        else:
            print("training RL4QDTS (pass --model to reuse a trained one)...")
            model = RL4QDTS.train(
                db,
                config=RL4QDTSConfig(
                    train_budget_ratio=args.ratio, seed=args.seed
                ),
            )
            if args.save_model:
                model.save(args.save_model)
                print(f"saved trained model to {args.save_model}")
        simplified = model.simplify(db, budget_ratio=args.ratio, seed=args.seed)
    else:
        spec = get_baseline(args.method)
        simplified = simplify_database(db, args.ratio, spec)
    save_database(simplified, args.out)
    print(
        f"{db.total_points} -> {simplified.total_points} points "
        f"({simplified.total_points / db.total_points:.2%}); wrote {args.out}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    original = load_database(args.original)
    simplified = load_database(args.simplified)
    evaluator = QueryAccuracyEvaluator(
        original,
        QuerySuiteConfig(
            n_range_queries=args.n_queries,
            clustering_subset=min(20, len(original)),
            seed=args.seed,
        ),
    )
    tasks = tuple(args.tasks) if args.tasks else ALL_TASKS
    scores = evaluator.evaluate(simplified, tasks)
    for task, value in scores.items():
        print(f"{task:<12}F1 = {value:.4f}")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.data import CodecConfig, encode_database, storage_report

    db = load_database(args.db)
    config = CodecConfig(quantum_xy=args.quantum_xy, quantum_t=args.quantum_t)
    Path(args.out).write_bytes(encode_database(db, config))
    report = storage_report(db, config)
    print(
        f"{report.n_points} points: {report.raw_bytes} raw bytes -> "
        f"{report.encoded_bytes} encoded ({report.bytes_per_point:.2f} "
        f"bytes/point, {report.compression_factor:.1f}x)"
    )
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.data import decode_database

    db = decode_database(Path(args.blob).read_bytes())
    save_database(db, args.out)
    print(f"decoded {db} to {args.out}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import RangeQueryWorkload

    db = load_database(args.db)
    kwargs = {}
    if args.distribution == "gaussian":
        kwargs = {"mu": args.mu, "sigma": args.sigma}
    elif args.distribution == "zipf":
        kwargs = {"a": args.zipf_a}
    workload = RangeQueryWorkload.generate(
        args.distribution, db, args.n_queries, seed=args.seed, **kwargs
    )
    workload.save(args.out)
    print(f"wrote {len(workload)} {args.distribution} queries to {args.out}")
    return 0


def _request_boxes(req: dict):
    """Boxes of a JSONL range/count request: inline bounds or a workload file."""
    from repro.data.bbox import BoundingBox
    from repro.workloads import RangeQueryWorkload

    if "workload" in req:
        return RangeQueryWorkload.load(req["workload"]).boxes
    return [BoundingBox(*bounds) for bounds in req["boxes"]]


def _serve_request(client, req: dict, lookup) -> dict:
    """Execute one JSONL request through a Client; JSON-safe response.

    ``client`` is any :class:`repro.client.Client` (the sharded service for
    ``repro serve``/``repro query``, a socket client for ``repro client``);
    ``lookup(i)`` resolves a query-trajectory id for knn/similarity ops.
    """
    op = req["op"]
    if op == "range":
        response = client.range(_request_boxes(req))
        body = {"results": [sorted(s) for s in response.result_sets]}
    elif op == "count":
        response = client.count(_request_boxes(req))
        body = {"counts": response.counts.tolist()}
    elif op == "histogram":
        response = client.histogram(
            grid=int(req.get("grid", 32)), normalize=bool(req.get("normalize", False))
        )
        body = {
            "histogram": response.histogram.tolist(),
            "total": float(response.histogram.sum()),
        }
    elif op == "knn":
        queries = [lookup(int(i)) for i in req["ids"]]
        response = client.knn(
            queries, int(req.get("k", 3)), eps=float(req.get("eps", 2000.0))
        )
        body = {"neighbors": response.neighbors}
    elif op == "similarity":
        queries = [lookup(int(i)) for i in req["ids"]]
        response = client.similarity(queries, float(req["delta"]))
        body = {"results": [sorted(s) for s in response.result_sets]}
    elif op == "ingest":
        result = client.ingest(list(load_database(req["db"])))
        return {"op": op, "added": result.added, "epoch": result.epoch}
    else:
        raise ValueError(f"unknown request op {op!r}")
    return {
        "op": op,
        "epoch": response.epoch,
        "cached": response.cached,
        "latency_ms": round(1000.0 * response.latency_s, 3),
        **body,
    }


def _make_service(args):
    from repro.service import QueryService, make_compaction

    db = load_database(args.db)
    compaction = make_compaction(
        getattr(args, "compaction", "exact"),
        error_budget=getattr(args, "error_budget", None),
        model=getattr(args, "compaction_model", None),
    )
    watchdog_interval = getattr(args, "watchdog_interval", 0.0) or 0.0
    return QueryService(
        db,
        n_shards=args.shards,
        partitioner=args.partitioner,
        executor=args.executor,
        index=args.index,
        store=args.store,
        compaction=compaction,
        replicas=getattr(args, "replicas", 1),
        rebalance_threshold=getattr(args, "rebalance_threshold", None),
        watchdog_interval=watchdog_interval if watchdog_interval > 0 else None,
        watchdog_deadline=getattr(args, "watchdog_deadline", 5.0),
    )


def _parse_hostport(value: str) -> tuple[str, int]:
    host, _, port = value.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"expected HOST:PORT, got {value!r}")
    return host, int(port)


def _serve_listen(args, service) -> int:
    """The asyncio socket front-end of ``repro serve --listen``."""
    import asyncio
    import json

    from repro.service.server import QueryServer

    host, port = _parse_hostport(args.listen)
    interval = float(getattr(args, "metrics_interval", 0.0) or 0.0)
    metrics_out = getattr(args, "metrics_out", None)

    async def _metrics_logger(server: QueryServer) -> None:
        """Append one metrics-snapshot JSON line every ``interval`` seconds."""
        sink = open(metrics_out, "a") if metrics_out else None
        try:
            while True:
                await asyncio.sleep(interval)
                report = await server.metrics_snapshot()
                line = json.dumps(report, sort_keys=True)
                if sink is not None:
                    sink.write(line + "\n")
                    sink.flush()
                else:
                    print(line, flush=True)
        finally:
            if sink is not None:
                sink.close()

    async def _run() -> None:
        server = QueryServer(
            service,
            host,
            port,
            workers=getattr(args, "workers", None),
            max_inflight=getattr(args, "max_inflight", None),
            auth_token=getattr(args, "auth_token", None),
        )
        await server.start()
        # The parseable "listening on" line is the startup contract scripts
        # and tests wait for (port 0 resolves to an OS-assigned port).
        print(f"listening on {server.host}:{server.port}", flush=True)
        logger = (
            asyncio.create_task(_metrics_logger(server)) if interval > 0 else None
        )
        try:
            await server.serve_forever()
        finally:
            if logger is not None:
                logger.cancel()
                try:
                    await logger
                except asyncio.CancelledError:
                    pass
            await server.stop()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        print("shutting down", flush=True)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.client import ServiceClient

    service = _make_service(args)
    client = ServiceClient(service)
    try:
        info = service.describe()
        compaction = info.get("compaction", {"policy": "exact"})
        budget = compaction.get("error_budget")
        print(
            f"serving {info['trajectories']} trajectories / {info['points']} "
            f"points across {info['n_shards']} shards "
            f"({info['partitioner']} partitioning, {info['executor']} executor, "
            f"{info['index']} index, {info['store']} store, "
            f"{compaction['policy']} compaction"
            + (f", error budget {budget}" if budget is not None else "")
            + (
                f", {info['replicas']} replicas/shard"
                if info.get("replicas", 1) != 1
                else ""
            )
            + ")"
        )
        failures = 0
        if args.listen:
            _serve_listen(args, service)
        elif args.requests:
            # Responses stream out as they are produced, and a failing
            # request yields an error response line instead of discarding
            # the work already done on earlier lines.
            sink = open(args.out, "w") if args.out else None
            n_responses = 0
            try:
                for line in Path(args.requests).read_text().splitlines():
                    line = line.strip()
                    if not line or line.startswith("#"):
                        continue
                    try:
                        response = _serve_request(
                            client, json.loads(line), service.manager.trajectory
                        )
                    except Exception as exc:
                        failures += 1
                        response = {
                            "error": f"{type(exc).__name__}: {exc}",
                            "request": line,
                        }
                    text = json.dumps(response)
                    n_responses += 1
                    if sink is not None:
                        sink.write(text + "\n")
                        sink.flush()
                    else:
                        print(text)
            finally:
                if sink is not None:
                    sink.close()
            if args.out:
                print(f"wrote {n_responses} responses to {args.out}")
        if args.stats:
            for key, value in service.stats.summary().items():
                shown = f"{value:.3f}" if isinstance(value, float) else value
                print(f"{key:<28}{shown}")
    finally:
        service.close()
    return 1 if failures else 0


def _cmd_query(args: argparse.Namespace) -> int:
    import json

    req: dict = {"op": args.type}
    if args.type in ("range", "count"):
        if not args.workload:
            raise SystemExit("--workload is required for range/count queries")
        req["workload"] = args.workload
    elif args.type == "histogram":
        req.update(grid=args.grid, normalize=args.normalize)
    elif args.type in ("knn", "similarity"):
        if not args.ids:
            raise SystemExit("--ids is required for knn/similarity queries")
        req["ids"] = args.ids
        if args.type == "knn":
            req.update(k=args.k, eps=args.eps)
        else:
            if args.delta is None:
                raise SystemExit("--delta is required for similarity queries")
            req["delta"] = args.delta
    from repro.client import ServiceClient

    service = _make_service(args)
    try:
        try:
            print(
                json.dumps(
                    _serve_request(
                        ServiceClient(service), req, service.manager.trajectory
                    )
                )
            )
        except Exception as exc:
            # Same contract as `serve`: failures become a JSON error line
            # and a nonzero exit, not a raw traceback.
            print(json.dumps({"error": f"{type(exc).__name__}: {exc}"}))
            return 1
    finally:
        service.close()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    """One-shot query against a running ``repro serve --listen`` server."""
    import json

    from repro.client import RemoteClient

    req: dict = {"op": args.type}
    if args.type in ("range", "count"):
        if not args.workload:
            raise SystemExit("--workload is required for range/count queries")
        req["workload"] = args.workload
    elif args.type == "histogram":
        req.update(grid=args.grid, normalize=args.normalize)
    elif args.type in ("knn", "similarity"):
        if not args.ids:
            raise SystemExit("--ids is required for knn/similarity queries")
        if not args.query_db:
            raise SystemExit(
                "--query-db is required for knn/similarity queries: query "
                "trajectories travel with the request, so --ids index into "
                "this local database file"
            )
        req["ids"] = args.ids
        if args.type == "knn":
            req.update(k=args.k, eps=args.eps)
        else:
            if args.delta is None:
                raise SystemExit("--delta is required for similarity queries")
            req["delta"] = args.delta
    elif args.type == "ingest":
        if not args.ingest:
            raise SystemExit("--ingest is required for the ingest op")
        req["db"] = args.ingest

    lookup = None
    if args.type in ("knn", "similarity"):
        query_db = load_database(args.query_db)
        lookup = query_db.__getitem__
    host, port = _parse_hostport(args.connect)
    client = RemoteClient(
        host, port, timeout=args.timeout, auth_token=args.auth_token
    )
    try:
        if args.type == "describe":
            print(json.dumps(client.describe()))
            return 0
        if args.type == "metrics":
            print(json.dumps(client.metrics(), sort_keys=True))
            return 0
        try:
            print(json.dumps(_serve_request(client, req, lookup)))
        except Exception as exc:
            print(json.dumps({"error": f"{type(exc).__name__}: {exc}"}))
            return 1
    finally:
        client.close()
    return 0


def _add_service_arguments(p: argparse.ArgumentParser) -> None:
    from repro.data.store import STORES
    from repro.service import COMPACTION_POLICIES, EXECUTORS, PARTITIONERS

    p.add_argument("--db", required=True, help="database to serve (.npz/.csv)")
    p.add_argument("--shards", type=int, default=4, help="number of shards K")
    p.add_argument("--partitioner", default="hash", choices=list(PARTITIONERS))
    p.add_argument("--executor", default="serial", choices=list(EXECUTORS),
                   help='"process" fans out to one worker process per shard')
    p.add_argument("--index", default="grid",
                   choices=["grid", "octree", "kdtree", "rtree", "auto"],
                   help="per-shard index backend; 'auto' lets the cost-based "
                   "planner pick per workload (answers are identical either "
                   "way — this tunes pruning cost only)")
    p.add_argument("--store", default="heap", choices=list(STORES),
                   help='"shm" publishes shard base tiers as named '
                   "shared-memory segments that process-executor workers "
                   "map zero-copy instead of unpickling (answers are "
                   "identical either way — this tunes memory layout only)")
    p.add_argument("--compaction", default="exact",
                   choices=list(COMPACTION_POLICIES),
                   help="base-rebuild policy of the shard runtimes: 'exact' "
                   "keeps answers bit-identical; 'uniform'/'greedy'/'rl' "
                   "simplify cold base tiers on every compaction (answers "
                   "become approximate within --error-budget)")
    p.add_argument("--error-budget", type=float, default=None,
                   help="per-trajectory error bound (SED) each simplifying "
                   "compaction pass must respect; omit to accept the "
                   "simplifier's ratio-driven proposal as-is")
    p.add_argument("--compaction-model",
                   help="trained RL4QDTS model (.npz) to load for "
                   "--compaction rl (omit for an untrained policy)")
    p.add_argument("--replicas", type=int, default=1,
                   help="worker processes per shard (process executor): "
                   "queries fail over to a live sibling when a worker "
                   "dies; ingest replicates to all (answers are identical "
                   "either way — this buys fault tolerance)")
    p.add_argument("--rebalance-threshold", type=float, default=None,
                   help="enable online shard split/merge (spatial "
                   "partitioner only): split the hottest shard above "
                   "THRESHOLD x mean points, merge the coldest adjacent "
                   "pair below mean / THRESHOLD; must be > 1")
    p.add_argument("--watchdog-interval", type=float, default=0.0,
                   help="seconds between watchdog liveness polls that "
                   "restart dead/hung shard replicas (0 disables)")
    p.add_argument("--watchdog-deadline", type=float, default=5.0,
                   help="seconds a replica heartbeat may take before the "
                   "watchdog declares it hung and restarts it")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query-accuracy-driven trajectory database simplification "
        "(RL4QDTS, ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic database")
    p.add_argument("--profile", default="geolife",
                   choices=["geolife", "tdrive", "chengdu", "osm"])
    p.add_argument("-n", "--n-trajectories", type=int, default=100)
    p.add_argument("--points-scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help=".npz or .csv path")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("stats", help="print dataset statistics")
    p.add_argument("--db", required=True)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("baselines", help="list the 25 baseline names")
    p.set_defaults(func=_cmd_baselines)

    p = sub.add_parser("simplify", help="simplify a database")
    p.add_argument("--db", required=True)
    p.add_argument("--ratio", type=float, required=True,
                   help="compression ratio r in (0, 1]")
    p.add_argument("--method", default="RL4QDTS",
                   help='"RL4QDTS" or a baseline name, e.g. "Bottom-Up(E,SED)"')
    p.add_argument("--model", help="load a trained RL4QDTS model (.npz)")
    p.add_argument("--save-model", help="save the trained model here")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_simplify)

    p = sub.add_parser("evaluate", help="score a simplified database")
    p.add_argument("--original", required=True)
    p.add_argument("--simplified", required=True)
    p.add_argument("--n-queries", type=int, default=100)
    p.add_argument("--tasks", nargs="*", choices=list(ALL_TASKS))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("encode", help="pack a database with the binary codec")
    p.add_argument("--db", required=True)
    p.add_argument("--out", required=True, help="output blob path")
    p.add_argument("--quantum-xy", type=float, default=0.01,
                   help="spatial resolution (coordinate units)")
    p.add_argument("--quantum-t", type=float, default=0.01,
                   help="temporal resolution (time units)")
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser("decode", help="unpack a codec blob")
    p.add_argument("--blob", required=True)
    p.add_argument("--out", required=True, help=".npz/.csv/.geojson path")
    p.set_defaults(func=_cmd_decode)

    p = sub.add_parser("workload", help="generate a range-query workload")
    p.add_argument("--db", required=True)
    p.add_argument("--distribution", default="data",
                   choices=["data", "gaussian", "zipf", "real", "uniform"])
    p.add_argument("-n", "--n-queries", type=int, default=100)
    p.add_argument("--mu", type=float, default=0.5)
    p.add_argument("--sigma", type=float, default=0.25)
    p.add_argument("--zipf-a", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output JSON path")
    p.set_defaults(func=_cmd_workload)

    p = sub.add_parser(
        "serve",
        help="run the sharded query service over a JSONL request file",
        description="Serve a database through the sharded QueryService. "
        "Each line of --requests is a JSON object: "
        '{"op": "range"|"count", "boxes": [[xmin,xmax,ymin,ymax,tmin,tmax], '
        '...]} or {"op": "range", "workload": "w.json"}; '
        '{"op": "histogram", "grid": 32}; '
        '{"op": "knn", "ids": [0, 1], "k": 3, "eps": 2000.0}; '
        '{"op": "similarity", "ids": [0], "delta": 5.0}; '
        '{"op": "ingest", "db": "more.npz"} streams another database in.',
    )
    _add_service_arguments(p)
    p.add_argument("--requests", help="JSONL request file (one request per line)")
    p.add_argument("--listen", metavar="HOST:PORT",
                   help="run the asyncio socket front-end instead of a JSONL "
                   "file: length-prefixed JSON frames, version handshake, "
                   "concurrent clients (port 0 picks a free port; Ctrl-C "
                   "shuts down gracefully). Query with `repro client` or "
                   "repro.client.RemoteClient.")
    p.add_argument("--out", help="write JSONL responses here instead of stdout")
    p.add_argument("--stats", action="store_true",
                   help="print latency/cache statistics after serving")
    p.add_argument("--metrics-interval", type=float, default=0.0, metavar="N",
                   help="with --listen: emit a JSON metrics snapshot every N "
                   "seconds (counters, latency histograms, cache/skip rates)")
    p.add_argument("--metrics-out",
                   help="append periodic metrics snapshots to this JSONL file "
                   "instead of stdout (requires --metrics-interval)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="with --listen: worker threads executing independent "
                   "requests concurrently (default: cpu count, capped at 8; "
                   "1 restores fully serialized execution). Ingest always "
                   "serializes behind the epoch write lock, so answers are "
                   "identical at any worker count")
    p.add_argument("--max-inflight", type=int, default=None, metavar="N",
                   help="with --listen: bound on admitted-but-unanswered "
                   "frames across all connections (default 4x --workers); "
                   "frames over the bound get a typed 'Overloaded' error "
                   "frame instead of queueing without limit")
    p.add_argument("--auth-token",
                   help="with --listen: require this token in every client "
                   "handshake (clients pass --auth-token / auth_token=...)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "client",
        help="one-shot query against a running `repro serve --listen` server",
        description="Connect to a socket server and run one query through "
        "the unified client API. Query trajectories for knn/similarity are "
        "read from --query-db and travel with the request.",
    )
    p.add_argument("--connect", required=True, metavar="HOST:PORT",
                   help="server address printed by `repro serve --listen`")
    p.add_argument("--type", required=True,
                   choices=["range", "count", "histogram", "knn",
                            "similarity", "ingest", "describe", "metrics"])
    p.add_argument("--workload", help="workload JSON (range/count)")
    p.add_argument("--grid", type=int, default=32, help="histogram resolution")
    p.add_argument("--normalize", action="store_true",
                   help="normalize the histogram to a distribution")
    p.add_argument("--query-db",
                   help="local database file supplying --ids query "
                   "trajectories (knn/similarity)")
    p.add_argument("--ids", type=int, nargs="*",
                   help="query trajectory ids into --query-db (knn/similarity)")
    p.add_argument("-k", "--k", type=int, default=3, help="kNN result size")
    p.add_argument("--eps", type=float, default=2000.0, help="EDR threshold")
    p.add_argument("--delta", type=float, help="similarity distance threshold")
    p.add_argument("--ingest", help="database file to stream in (type=ingest)")
    p.add_argument("--timeout", type=float, default=60.0,
                   help="socket timeout in seconds")
    p.add_argument("--auth-token",
                   help="handshake token for servers started with "
                   "`repro serve --listen --auth-token`")
    p.set_defaults(func=_cmd_client)

    p = sub.add_parser("query", help="one-shot sharded query against a database")
    _add_service_arguments(p)
    p.add_argument("--type", required=True,
                   choices=["range", "count", "histogram", "knn", "similarity"])
    p.add_argument("--workload", help="workload JSON (range/count)")
    p.add_argument("--grid", type=int, default=32, help="histogram resolution")
    p.add_argument("--normalize", action="store_true",
                   help="normalize the histogram to a distribution")
    p.add_argument("--ids", type=int, nargs="*",
                   help="query trajectory ids (knn/similarity)")
    p.add_argument("-k", "--k", type=int, default=3, help="kNN result size")
    p.add_argument("--eps", type=float, default=2000.0, help="EDR threshold")
    p.add_argument("--delta", type=float, help="similarity distance threshold")
    p.set_defaults(func=_cmd_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
