"""Command-line interface: ``python -m repro <command>``.

Subcommands cover the full pipeline so the library is usable without writing
code:

* ``generate``  — write a synthetic profile database to .npz/.csv
* ``stats``     — print Table-I style statistics of a database
* ``simplify``  — simplify a database with RL4QDTS or any named baseline
* ``evaluate``  — score a simplified database against its original on the
  five query tasks
* ``baselines`` — list the 25 baseline names
* ``encode``    — pack a database into the delta-varint binary codec
* ``decode``    — unpack a codec blob back into .npz/.csv/.geojson
* ``workload``  — generate a range-query workload and save it as JSON

Example::

    python -m repro generate --profile chengdu -n 100 --out db.npz
    python -m repro simplify --db db.npz --ratio 0.05 --method RL4QDTS \
        --out small.npz
    python -m repro evaluate --original db.npz --simplified small.npz
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import all_baselines, get_baseline, simplify_database
from repro.core import RL4QDTS, RL4QDTSConfig
from repro.data import (
    dataset_statistics,
    load_database,
    save_database,
    synthetic_database,
)
from repro.eval import ALL_TASKS, QueryAccuracyEvaluator, QuerySuiteConfig


def _cmd_generate(args: argparse.Namespace) -> int:
    db = synthetic_database(
        args.profile,
        n_trajectories=args.n_trajectories,
        points_scale=args.points_scale,
        seed=args.seed,
    )
    save_database(db, args.out)
    print(f"wrote {db} to {args.out}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    for key, value in dataset_statistics(db).as_row().items():
        print(f"{key:<26}{value}")
    return 0


def _cmd_baselines(_args: argparse.Namespace) -> int:
    for spec in all_baselines():
        print(spec.name)
    return 0


def _cmd_simplify(args: argparse.Namespace) -> int:
    db = load_database(args.db)
    if args.method == "RL4QDTS":
        if args.model:
            model = RL4QDTS.load(args.model)
        else:
            print("training RL4QDTS (pass --model to reuse a trained one)...")
            model = RL4QDTS.train(
                db,
                config=RL4QDTSConfig(
                    train_budget_ratio=args.ratio, seed=args.seed
                ),
            )
            if args.save_model:
                model.save(args.save_model)
                print(f"saved trained model to {args.save_model}")
        simplified = model.simplify(db, budget_ratio=args.ratio, seed=args.seed)
    else:
        spec = get_baseline(args.method)
        simplified = simplify_database(db, args.ratio, spec)
    save_database(simplified, args.out)
    print(
        f"{db.total_points} -> {simplified.total_points} points "
        f"({simplified.total_points / db.total_points:.2%}); wrote {args.out}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    original = load_database(args.original)
    simplified = load_database(args.simplified)
    evaluator = QueryAccuracyEvaluator(
        original,
        QuerySuiteConfig(
            n_range_queries=args.n_queries,
            clustering_subset=min(20, len(original)),
            seed=args.seed,
        ),
    )
    tasks = tuple(args.tasks) if args.tasks else ALL_TASKS
    scores = evaluator.evaluate(simplified, tasks)
    for task, value in scores.items():
        print(f"{task:<12}F1 = {value:.4f}")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.data import CodecConfig, encode_database, storage_report

    db = load_database(args.db)
    config = CodecConfig(quantum_xy=args.quantum_xy, quantum_t=args.quantum_t)
    Path(args.out).write_bytes(encode_database(db, config))
    report = storage_report(db, config)
    print(
        f"{report.n_points} points: {report.raw_bytes} raw bytes -> "
        f"{report.encoded_bytes} encoded ({report.bytes_per_point:.2f} "
        f"bytes/point, {report.compression_factor:.1f}x)"
    )
    return 0


def _cmd_decode(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.data import decode_database

    db = decode_database(Path(args.blob).read_bytes())
    save_database(db, args.out)
    print(f"decoded {db} to {args.out}")
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    from repro.workloads import RangeQueryWorkload

    db = load_database(args.db)
    kwargs = {}
    if args.distribution == "gaussian":
        kwargs = {"mu": args.mu, "sigma": args.sigma}
    elif args.distribution == "zipf":
        kwargs = {"a": args.zipf_a}
    workload = RangeQueryWorkload.generate(
        args.distribution, db, args.n_queries, seed=args.seed, **kwargs
    )
    workload.save(args.out)
    print(f"wrote {len(workload)} {args.distribution} queries to {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query-accuracy-driven trajectory database simplification "
        "(RL4QDTS, ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate a synthetic database")
    p.add_argument("--profile", default="geolife",
                   choices=["geolife", "tdrive", "chengdu", "osm"])
    p.add_argument("-n", "--n-trajectories", type=int, default=100)
    p.add_argument("--points-scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help=".npz or .csv path")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("stats", help="print dataset statistics")
    p.add_argument("--db", required=True)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser("baselines", help="list the 25 baseline names")
    p.set_defaults(func=_cmd_baselines)

    p = sub.add_parser("simplify", help="simplify a database")
    p.add_argument("--db", required=True)
    p.add_argument("--ratio", type=float, required=True,
                   help="compression ratio r in (0, 1]")
    p.add_argument("--method", default="RL4QDTS",
                   help='"RL4QDTS" or a baseline name, e.g. "Bottom-Up(E,SED)"')
    p.add_argument("--model", help="load a trained RL4QDTS model (.npz)")
    p.add_argument("--save-model", help="save the trained model here")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True)
    p.set_defaults(func=_cmd_simplify)

    p = sub.add_parser("evaluate", help="score a simplified database")
    p.add_argument("--original", required=True)
    p.add_argument("--simplified", required=True)
    p.add_argument("--n-queries", type=int, default=100)
    p.add_argument("--tasks", nargs="*", choices=list(ALL_TASKS))
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser("encode", help="pack a database with the binary codec")
    p.add_argument("--db", required=True)
    p.add_argument("--out", required=True, help="output blob path")
    p.add_argument("--quantum-xy", type=float, default=0.01,
                   help="spatial resolution (coordinate units)")
    p.add_argument("--quantum-t", type=float, default=0.01,
                   help="temporal resolution (time units)")
    p.set_defaults(func=_cmd_encode)

    p = sub.add_parser("decode", help="unpack a codec blob")
    p.add_argument("--blob", required=True)
    p.add_argument("--out", required=True, help=".npz/.csv/.geojson path")
    p.set_defaults(func=_cmd_decode)

    p = sub.add_parser("workload", help="generate a range-query workload")
    p.add_argument("--db", required=True)
    p.add_argument("--distribution", default="data",
                   choices=["data", "gaussian", "zipf", "real", "uniform"])
    p.add_argument("-n", "--n-queries", type=int, default=100)
    p.add_argument("--mu", type=float, default=0.5)
    p.add_argument("--sigma", type=float, default=0.25)
    p.add_argument("--zipf-a", type=float, default=4.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output JSON path")
    p.set_defaults(func=_cmd_workload)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
