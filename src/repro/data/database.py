"""The :class:`TrajectoryDatabase` container.

A database ``D`` is an ordered collection of :class:`~repro.data.Trajectory`
objects. ``N`` denotes the total number of points across all trajectories
(paper, Section III-A); the storage budget of the QDTS problem is expressed
as ``W = r * N`` for a compression ratio ``r``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.trajectory import Trajectory


class TrajectoryDatabase:
    """An ordered, id-addressable set of trajectories.

    Trajectory ids are re-assigned to the position in the database so that
    ``db[traj.traj_id] is traj`` always holds. This keeps cross-references
    from indexes, query results, and simplification states trivially stable.
    """

    __slots__ = (
        "trajectories",
        "_bbox",
        "_total_points",
        "_point_matrix",
        "_point_offsets",
        "_store",
        "__weakref__",
    )

    def __init__(self, trajectories: Iterable[Trajectory], store=None) -> None:
        self.trajectories: list[Trajectory] = [
            Trajectory(t.points, traj_id=i) if t.traj_id != i else t
            for i, t in enumerate(trajectories)
        ]
        if not self.trajectories:
            raise ValueError("a database needs at least one trajectory")
        self._bbox: BoundingBox | None = None
        self._total_points: int | None = None
        self._point_matrix: np.ndarray | None = None
        self._point_offsets: np.ndarray | None = None
        # Array-store provider (repro.data.store) the columnar
        # materialization is placed into; None keeps today's plain heap
        # arrays with zero indirection.
        self._store = store

    @classmethod
    def from_columnar(
        cls, matrix: np.ndarray, offsets: np.ndarray
    ) -> "TrajectoryDatabase":
        """Rebuild a database as zero-copy views into a CSR layout.

        ``matrix`` is the ``(N, 3)`` point matrix and ``offsets`` the
        ``(M + 1,)`` row offsets, exactly as produced by
        :meth:`point_matrix`/:meth:`point_offsets` (possibly mapped from a
        shared-memory segment). Trajectory ``i`` becomes a view of rows
        ``offsets[i]:offsets[i + 1]`` — no point data is copied, and the
        columnar caches are pre-populated so downstream consumers
        (:class:`~repro.queries.engine.QueryEngine`) never re-concatenate.
        """
        matrix = np.asarray(matrix, dtype=np.float64)
        offsets = np.asarray(offsets, dtype=np.int64)
        if matrix.ndim != 2 or matrix.shape[1] != 3:
            raise ValueError(f"expected an (N, 3) matrix, got shape {matrix.shape}")
        if offsets.ndim != 1 or len(offsets) < 2 or offsets[0] != 0:
            raise ValueError("offsets must be (M + 1,) with offsets[0] == 0")
        if offsets[-1] != len(matrix) or np.any(np.diff(offsets) < 2):
            raise ValueError("offsets do not describe valid trajectories")
        if matrix.flags.writeable:
            matrix = matrix.view()
            matrix.setflags(write=False)
        if offsets.flags.writeable:
            offsets = offsets.view()
            offsets.setflags(write=False)
        db = cls.__new__(cls)
        db.trajectories = [
            Trajectory._wrap(matrix[s:e], traj_id=i)
            for i, (s, e) in enumerate(zip(offsets[:-1], offsets[1:]))
        ]
        db._bbox = None
        db._total_points = int(offsets[-1])
        db._point_matrix = matrix
        db._point_offsets = offsets
        db._store = None
        return db

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self.trajectories)

    def __iter__(self) -> Iterator[Trajectory]:
        return iter(self.trajectories)

    def __getitem__(self, traj_id: int) -> Trajectory:
        return self.trajectories[traj_id]

    def __repr__(self) -> str:
        return f"TrajectoryDatabase(M={len(self)}, N={self.total_points})"

    @property
    def total_points(self) -> int:
        """``N``: the total number of points across all trajectories."""
        if self._total_points is None:
            self._total_points = sum(len(t) for t in self.trajectories)
        return self._total_points

    @property
    def bounding_box(self) -> BoundingBox:
        if self._bbox is None:
            box = self.trajectories[0].bounding_box
            for t in self.trajectories[1:]:
                box = box.union(t.bounding_box)
            self._bbox = box
        return self._bbox

    # --------------------------------------------------------------- utilities
    def budget_for_ratio(self, ratio: float) -> int:
        """The point budget ``W = ratio * N``, floored at two points per trajectory.

        Simplified trajectories always keep their endpoints, so any feasible
        budget is at least ``2 * M``.
        """
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"compression ratio must be in (0, 1], got {ratio}")
        return max(int(round(ratio * self.total_points)), 2 * len(self))

    def all_points(self) -> np.ndarray:
        """All points stacked into one ``(N, 3)`` array (database order).

        Alias of :meth:`point_matrix`; the returned array is cached and
        read-only — copy before mutating.
        """
        return self.point_matrix()

    def point_matrix(self) -> np.ndarray:
        """The cached, read-only ``(N, 3)`` point matrix (database order).

        Row ``i`` of trajectory ``tid`` lives at global row
        ``point_offsets()[tid] + i``; batch query execution
        (:class:`repro.queries.engine.QueryEngine`) runs containment tests
        directly over this matrix instead of walking trajectories.
        """
        if self._point_matrix is None:
            flat = np.concatenate([t.points for t in self.trajectories], axis=0)
            if self._store is not None:
                flat = self._store.put(flat, label="matrix").resolve()
            else:
                flat.setflags(write=False)
            self._point_matrix = flat
        return self._point_matrix

    def point_offsets(self) -> np.ndarray:
        """Cached ``(M + 1,)`` row offsets into :meth:`point_matrix`.

        Trajectory ``tid`` owns rows ``offsets[tid]:offsets[tid + 1]``.
        """
        if self._point_offsets is None:
            counts = np.fromiter(
                (len(t) for t in self.trajectories),
                dtype=np.int64,
                count=len(self.trajectories),
            )
            offsets = np.zeros(len(self.trajectories) + 1, dtype=np.int64)
            np.cumsum(counts, out=offsets[1:])
            if self._store is not None:
                offsets = self._store.put(offsets, label="offsets").resolve()
            else:
                offsets.setflags(write=False)
            self._point_offsets = offsets
        return self._point_offsets

    def point_ownership(self) -> np.ndarray:
        """``(N,)`` trajectory id per row of :meth:`all_points`."""
        offsets = self.point_offsets()
        return np.repeat(
            np.arange(len(self.trajectories), dtype=np.int64),
            np.diff(offsets),
        )

    def subset(self, traj_ids: Sequence[int]) -> "TrajectoryDatabase":
        """A new database over the given trajectory ids (re-numbered)."""
        return TrajectoryDatabase([self.trajectories[i] for i in traj_ids])

    def extended(self, new_trajectories: Iterable[Trajectory]) -> "TrajectoryDatabase":
        """A new database with ``new_trajectories`` appended.

        Existing trajectories keep their ids; appended ones continue the id
        sequence. This is the reference materialization of a streamed
        database state: the sharded service's ingestion path
        (:mod:`repro.service`) is property-tested to answer queries exactly
        as a fresh engine over ``db.extended(batches...)`` does.
        """
        return TrajectoryDatabase([*self.trajectories, *new_trajectories])

    def centroids(self) -> np.ndarray:
        """``(M, 2)`` spatial centroid (mean x, mean y) per trajectory.

        Computed in one pass over the cached point matrix; the spatial shard
        partitioner slabs the database along these.
        """
        points = self.point_matrix()
        offsets = self.point_offsets()
        counts = np.diff(offsets).astype(float)
        # reduceat is safe: every trajectory owns >= 2 rows, so no empty
        # segments exist.
        sums_x = np.add.reduceat(points[:, 0], offsets[:-1])
        sums_y = np.add.reduceat(points[:, 1], offsets[:-1])
        return np.column_stack([sums_x / counts, sums_y / counts])

    def partition_ids(
        self, n_shards: int, strategy: str = "hash"
    ) -> list[np.ndarray]:
        """Deterministic shard membership: per-shard sorted global-id arrays.

        ``strategy="hash"`` assigns id ``i`` to shard ``i % n_shards``
        (round-robin — balanced regardless of geometry); ``"spatial"`` cuts
        the database into ``n_shards`` slabs along the x-coordinate of the
        trajectory centroids at empirical quantiles (queries with a small
        spatial footprint then touch few shards). Every id appears in
        exactly one shard; shards may be empty when ``n_shards > M``.

        The assignment rules live in :mod:`repro.data.partition` and are
        the SAME objects the service's
        :class:`~repro.service.sharding.ShardManager` routes with, so this
        bulk view is bit-identical to live shard routing, initial split
        and streamed ingests alike.
        """
        from repro.data.partition import make_partitioner

        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        part = make_partitioner(strategy, self, n_shards)
        assign = np.fromiter(
            (part.assign(gid, traj) for gid, traj in enumerate(self.trajectories)),
            dtype=np.int64,
            count=len(self.trajectories),
        )
        ids = np.arange(len(self), dtype=np.int64)
        return [ids[assign == s] for s in range(n_shards)]

    def sample(self, n: int, rng: np.random.Generator) -> "TrajectoryDatabase":
        """A uniformly sampled sub-database of ``n`` trajectories."""
        n = min(n, len(self))
        ids = rng.choice(len(self), size=n, replace=False)
        return self.subset(sorted(int(i) for i in ids))

    def map_simplify(self, simplify_fn) -> "TrajectoryDatabase":
        """Apply ``simplify_fn(traj) -> kept_indices`` to every trajectory."""
        return TrajectoryDatabase(
            [t.subsample(simplify_fn(t)) for t in self.trajectories]
        )
