"""Synthetic scaled-down analogues of the paper's four datasets.

The paper evaluates on Geolife, T-Drive, Chengdu (DiDi), and OSM — real GPS
corpora that are not redistributable offline. This module substitutes them
with generators whose *statistics match Table I at a reduced scale*:

==========  ==============  ==========  =================  ===============
profile     pts/trajectory  sampling    avg segment (m)    movement model
==========  ==============  ==========  =================  ===============
geolife     ~1412 (scaled)  1s – 5s     ~10                walk + stay-points
tdrive      ~1713 (scaled)  ~177s       ~623               sparse taxi cruising
chengdu     ~178  (scaled)  2s – 4s     ~25                short ride-hailing trips
osm         ~5675 (scaled)  ~53.5s      ~180               long mixed-mode traces
==========  ==============  ==========  =================  ===============

Trajectories are correlated random walks: a heading that drifts slowly
(persistence), a per-profile step-length distribution, trip origins drawn
from a mixture of spatial hotspots (which produces the skew that the paper's
"real distribution" query workload exploits), and — for the geolife profile —
stay-point episodes during which the object barely moves, creating the runs
of droppable points that motivate simplification in the paper's introduction.

All generators take an explicit seed and are fully deterministic.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


@dataclass(frozen=True, slots=True)
class DatasetProfile:
    """Statistical profile of one of the paper's datasets (Table I)."""

    name: str
    full_n_trajectories: int
    full_mean_points: float
    sampling_interval: tuple[float, float]  # (min, max) seconds
    mean_segment_length: float  # metres
    extent: float  # side of the square region, metres
    heading_persistence: float  # std-dev of per-step heading change (radians)
    stay_point_prob: float  # probability of entering a stay episode per step
    n_hotspots: int
    hotspot_weight: float  # fraction of trips starting at a hotspot

    def scaled_points(self, scale: float) -> float:
        """Mean points per trajectory after scaling, floored at 8."""
        return max(8.0, self.full_mean_points * scale)


DATASET_PROFILES: dict[str, DatasetProfile] = {
    "geolife": DatasetProfile(
        name="geolife",
        full_n_trajectories=17_621,
        full_mean_points=1_412,
        sampling_interval=(1.0, 5.0),
        mean_segment_length=9.96,
        extent=8_000.0,
        heading_persistence=0.35,
        stay_point_prob=0.02,
        n_hotspots=4,
        hotspot_weight=0.85,
    ),
    "tdrive": DatasetProfile(
        name="tdrive",
        full_n_trajectories=10_359,
        full_mean_points=1_713,
        sampling_interval=(150.0, 204.0),
        mean_segment_length=623.0,
        extent=50_000.0,
        heading_persistence=0.55,
        stay_point_prob=0.01,
        n_hotspots=6,
        hotspot_weight=0.8,
    ),
    "chengdu": DatasetProfile(
        name="chengdu",
        full_n_trajectories=179_756,
        full_mean_points=178,
        sampling_interval=(2.0, 4.0),
        mean_segment_length=25.0,
        extent=6_000.0,
        heading_persistence=0.25,
        stay_point_prob=0.005,
        n_hotspots=8,
        hotspot_weight=0.85,
    ),
    "osm": DatasetProfile(
        name="osm",
        full_n_trajectories=513_380,
        full_mean_points=5_675,
        sampling_interval=(40.0, 67.0),
        mean_segment_length=180.0,
        extent=80_000.0,
        heading_persistence=0.45,
        stay_point_prob=0.01,
        n_hotspots=10,
        hotspot_weight=0.6,
    ),
}

#: Time horizon (seconds) over which trip start times are spread — one week,
#: matching the 7-day temporal window the paper uses for queries.
TIME_HORIZON = 7 * 24 * 3600.0


def _hotspots(profile: DatasetProfile, rng: np.random.Generator) -> np.ndarray:
    """Hotspot centres, deterministic per profile (independent of trip draws).

    Uses crc32 rather than ``hash`` because Python string hashing is salted
    per process, which would silently change the dataset between runs.
    """
    hotspot_rng = np.random.default_rng(zlib.crc32(profile.name.encode()))
    return hotspot_rng.uniform(
        0.15 * profile.extent, 0.85 * profile.extent, size=(profile.n_hotspots, 2)
    )


def _trip_origin(
    profile: DatasetProfile, hotspots: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    if rng.random() < profile.hotspot_weight:
        centre = hotspots[rng.integers(len(hotspots))]
        return rng.normal(centre, 0.02 * profile.extent, size=2)
    return rng.uniform(0.0, profile.extent, size=2)


def _wrap_angle(angle: float) -> float:
    """Wrap an angle difference into ``[-pi, pi]``."""
    return (angle + np.pi) % (2.0 * np.pi) - np.pi


def _generate_trajectory(
    profile: DatasetProfile,
    n_points: int,
    hotspots: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One trip-structured trace: directed movement between destinations.

    Real GPS trajectories are trips, not diffusive random walks: the object
    heads toward a destination (with heading noise and turns), arrives, and —
    for long traces — continues to the next destination. This keeps a
    trajectory's spatial diameter proportional to its path length, which is
    what makes range queries selective *within* a trajectory and therefore
    makes simplification quality observable (see the paper's Section I
    motivation). Stay-point episodes inject the runs of droppable points the
    simplification literature exploits.
    """
    # Sampling-rate heterogeneity: each trace has its own base interval drawn
    # from the profile's range (a 1s Geolife logger vs a 5s one), with small
    # per-step jitter. Heterogeneous rates are exactly what makes uniform
    # per-trajectory compression ratios sub-optimal (paper, Issue 1).
    lo, hi = profile.sampling_interval
    base_interval = rng.uniform(lo, hi)
    dts = base_interval * rng.uniform(0.85, 1.15, size=n_points - 1)
    times = np.empty(n_points)
    times[0] = rng.uniform(0.0, TIME_HORIZON)
    times[1:] = times[0] + np.cumsum(dts)

    # Complexity heterogeneity: some objects drive straight, others wander.
    turn_noise = profile.heading_persistence * rng.uniform(0.5, 1.8)

    xy = np.empty((n_points, 2))
    xy[0] = _trip_origin(profile, hotspots, rng)
    destination = _trip_origin(profile, hotspots, rng)
    heading = rng.uniform(0.0, 2.0 * np.pi)
    # Step length = speed x sampling interval, with log-normal speeds around
    # the profile's implied mean speed. An oversampled (short-interval) trace
    # therefore has proportionally shorter, more redundant segments — while
    # the profile's *mean* segment length stays on target (Table I).
    mean_interval = 0.5 * (lo + hi)
    mean_speed = profile.mean_segment_length / mean_interval
    sigma = 0.6
    mu = np.log(mean_speed) - 0.5 * sigma**2
    arrival_radius = 4.0 * mean_speed * base_interval
    staying = 0  # remaining steps of the current stay episode
    for i in range(1, n_points):
        here = xy[i - 1]
        if np.linalg.norm(destination - here) < arrival_radius:
            destination = _trip_origin(profile, hotspots, rng)
        if staying > 0:
            staying -= 1
            step = rng.uniform(0.0, 0.5)  # GPS jitter while stationary
        else:
            if rng.random() < profile.stay_point_prob:
                staying = int(rng.integers(5, 30))
                step = rng.uniform(0.0, 0.5)
            else:
                step = rng.lognormal(mu, sigma) * dts[i - 1]
        # Steer toward the destination, with per-profile heading noise.
        target = np.arctan2(destination[1] - here[1], destination[0] - here[0])
        heading += 0.4 * _wrap_angle(target - heading)
        heading += rng.normal(0.0, turn_noise)
        candidate = here + step * np.array([np.cos(heading), np.sin(heading)])
        xy[i] = np.clip(candidate, 0.0, profile.extent)
    return np.column_stack([xy, times])


def synthetic_database(
    profile: str | DatasetProfile,
    n_trajectories: int = 100,
    points_scale: float = 0.1,
    seed: int | None = None,
) -> TrajectoryDatabase:
    """Generate a scaled-down database following one of the paper's profiles.

    Parameters
    ----------
    profile:
        A profile name (``"geolife"``, ``"tdrive"``, ``"chengdu"``, ``"osm"``)
        or a :class:`DatasetProfile`.
    n_trajectories:
        Number of trajectories to generate.
    points_scale:
        Multiplier applied to the profile's full mean points per trajectory.
        The default ``0.1`` turns Geolife's ~1412 points into ~141.
    seed:
        Seed for the deterministic generator.
    """
    if isinstance(profile, str):
        try:
            profile = DATASET_PROFILES[profile]
        except KeyError:
            raise ValueError(
                f"unknown profile {profile!r}; choose from {sorted(DATASET_PROFILES)}"
            ) from None
    if n_trajectories < 1:
        raise ValueError("need at least one trajectory")
    rng = np.random.default_rng(seed)
    hotspots = _hotspots(profile, rng)
    mean_pts = profile.scaled_points(points_scale)
    trajectories = []
    for i in range(n_trajectories):
        # Point counts vary around the mean (log-normal, as real corpora do).
        n_points = int(
            np.clip(rng.lognormal(np.log(mean_pts), 0.35), 8, 12 * mean_pts)
        )
        pts = _generate_trajectory(profile, n_points, hotspots, rng)
        trajectories.append(Trajectory(pts, traj_id=i))
    return TrajectoryDatabase(trajectories)
