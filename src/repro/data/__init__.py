"""Trajectory data model, synthetic dataset generators, and I/O."""

from repro.data.bbox import BoundingBox
from repro.data.trajectory import Trajectory
from repro.data.database import TrajectoryDatabase
from repro.data.store import (
    STORES,
    ArrayHandle,
    HeapStore,
    SharedMemoryStore,
    StoreError,
    make_store,
    shared_memory_available,
)
from repro.data.simplification import SimplificationState
from repro.data.stats import DatasetStatistics, dataset_statistics
from repro.data.synthetic import (
    DATASET_PROFILES,
    DatasetProfile,
    synthetic_database,
)
from repro.data.io import save_database, load_database
from repro.data.codec import (
    CodecConfig,
    StorageReport,
    encode_database,
    decode_database,
    encode_trajectory,
    decode_trajectory,
    storage_report,
)
from repro.data.staypoints import (
    StayPoint,
    detect_stay_points,
    stay_aware_simplify,
    stay_aware_simplify_database,
    stay_statistics,
)
from repro.data.transforms import (
    add_gps_noise,
    resample_regular,
    drop_points_randomly,
)

__all__ = [
    "BoundingBox",
    "Trajectory",
    "TrajectoryDatabase",
    "STORES",
    "ArrayHandle",
    "HeapStore",
    "SharedMemoryStore",
    "StoreError",
    "make_store",
    "shared_memory_available",
    "SimplificationState",
    "DatasetStatistics",
    "dataset_statistics",
    "DATASET_PROFILES",
    "DatasetProfile",
    "synthetic_database",
    "save_database",
    "add_gps_noise",
    "resample_regular",
    "drop_points_randomly",
    "load_database",
    "CodecConfig",
    "StorageReport",
    "encode_database",
    "decode_database",
    "encode_trajectory",
    "decode_trajectory",
    "storage_report",
    "StayPoint",
    "detect_stay_points",
    "stay_aware_simplify",
    "stay_aware_simplify_database",
    "stay_statistics",
]
