"""Deterministic trajectory-to-shard assignment rules.

These are data-layer primitives (they need nothing beyond a trajectory's
points), defined here so both :meth:`TrajectoryDatabase.partition_ids`
and the service layer's :class:`~repro.service.sharding.ShardManager`
import the SAME rule downward — the bulk membership view and live shard
routing can never drift apart, and the data -> engine -> service layering
stays one-way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only imports, no runtime cycle
    from repro.data.database import TrajectoryDatabase
    from repro.data.trajectory import Trajectory

PARTITIONERS = ("hash", "spatial")


class HashPartitioner:
    """Round-robin assignment: global id ``g`` lives on shard ``g % K``.

    Geometry-oblivious but perfectly balanced under streaming, and every
    shard's global-id sequence is strictly increasing — a property the
    service's exact kNN merge relies on (per-shard local order ==
    global-id order).
    """

    name = "hash"

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def assign(self, global_id: int, trajectory: "Trajectory") -> int:
        return global_id % self.n_shards


class SpatialPartitioner:
    """Quantile slabs along the x-coordinate of trajectory centroids.

    Cut points are fixed when the partitioner is built (from the initial
    database), so streamed-in trajectories route deterministically without
    re-balancing; spatially selective queries then concentrate their work
    on few shards.
    """

    name = "spatial"

    def __init__(self, boundaries: np.ndarray, n_shards: int) -> None:
        self.boundaries = np.asarray(boundaries, dtype=float)
        if len(self.boundaries) != n_shards - 1:
            raise ValueError("need exactly n_shards - 1 cut points")
        self.n_shards = n_shards

    @classmethod
    def from_database(
        cls, db: "TrajectoryDatabase", n_shards: int
    ) -> "SpatialPartitioner":
        x = db.centroids()[:, 0]
        boundaries = np.quantile(x, np.linspace(0.0, 1.0, n_shards + 1)[1:-1])
        return cls(boundaries, n_shards)

    def assign(self, global_id: int, trajectory: "Trajectory") -> int:
        # Same summation order as TrajectoryDatabase.centroids() (a
        # single-segment reduceat) — points[:, 0].mean() uses pairwise
        # summation and can land on the other side of a quantile cut by
        # one ulp, splitting the rule in two.
        x = float(
            np.add.reduceat(trajectory.points[:, 0], [0])[0] / len(trajectory)
        )
        return int(np.searchsorted(self.boundaries, x, side="right"))


def make_partitioner(
    strategy: str, db: "TrajectoryDatabase", n_shards: int
) -> HashPartitioner | SpatialPartitioner:
    """Build the named partitioner for ``db``."""
    if strategy == "hash":
        return HashPartitioner(n_shards)
    if strategy == "spatial":
        return SpatialPartitioner.from_database(db, n_shards)
    raise ValueError(
        f"unknown partition strategy {strategy!r}; choose from {PARTITIONERS}"
    )
