"""Deterministic trajectory-to-shard assignment rules.

These are data-layer primitives (they need nothing beyond a trajectory's
points), defined here so both :meth:`TrajectoryDatabase.partition_ids`
and the service layer's :class:`~repro.service.sharding.ShardManager`
import the SAME rule downward — the bulk membership view and live shard
routing can never drift apart, and the data -> engine -> service layering
stays one-way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - type-only imports, no runtime cycle
    from repro.data.database import TrajectoryDatabase
    from repro.data.trajectory import Trajectory

PARTITIONERS = ("hash", "spatial")


def centroid_x(trajectory: "Trajectory") -> float:
    """A trajectory's centroid x-coordinate, in routing arithmetic.

    Same summation order as ``TrajectoryDatabase.centroids()`` (a
    single-segment reduceat) — ``points[:, 0].mean()`` uses pairwise
    summation and can land on the other side of a quantile cut by one
    ulp, splitting the rule in two. Every spatial-routing decision
    (initial partition, streamed ingest, online split planning) must go
    through this one function.
    """
    return float(
        np.add.reduceat(trajectory.points[:, 0], [0])[0] / len(trajectory)
    )


class HashPartitioner:
    """Round-robin assignment: global id ``g`` lives on shard ``g % K``.

    Geometry-oblivious but perfectly balanced under streaming, and every
    shard's global-id sequence is strictly increasing — a property the
    service's exact kNN merge relies on (per-shard local order ==
    global-id order).
    """

    name = "hash"

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        self.n_shards = n_shards

    def assign(self, global_id: int, trajectory: "Trajectory") -> int:
        return global_id % self.n_shards


class SpatialPartitioner:
    """Quantile slabs along the x-coordinate of trajectory centroids.

    Cut points are fixed when the partitioner is built (from the initial
    database), so streamed-in trajectories route deterministically without
    re-balancing; spatially selective queries then concentrate their work
    on few shards.
    """

    name = "spatial"

    def __init__(self, boundaries: np.ndarray, n_shards: int) -> None:
        self.boundaries = np.asarray(boundaries, dtype=float)
        if len(self.boundaries) != n_shards - 1:
            raise ValueError("need exactly n_shards - 1 cut points")
        self.n_shards = n_shards

    @classmethod
    def from_database(
        cls, db: "TrajectoryDatabase", n_shards: int
    ) -> "SpatialPartitioner":
        x = db.centroids()[:, 0]
        boundaries = np.quantile(x, np.linspace(0.0, 1.0, n_shards + 1)[1:-1])
        return cls(boundaries, n_shards)

    def assign(self, global_id: int, trajectory: "Trajectory") -> int:
        return int(
            np.searchsorted(self.boundaries, centroid_x(trajectory), side="right")
        )

    # ------------------------------------------------- online slab surgery
    # The service's live rebalancer edits the cut-point array in place:
    # membership moves *with* the rule, so routing and shard contents can
    # never disagree. ``side="right"`` in assign() makes the slab around
    # cut ``c`` split as ``left = {x < c}``, ``right = {x >= c}``.

    def insert_cut(self, slab: int, cut: float) -> None:
        """Split ``slab`` at ``cut``, growing the partitioner by one shard.

        ``cut`` must lie inside the slab's interval so the boundary array
        stays sorted (the caller picks it from member centroids, which by
        construction route into the slab).
        """
        if not 0 <= slab < self.n_shards:
            raise ValueError(f"no slab {slab} to split (n_shards={self.n_shards})")
        lo = self.boundaries[slab - 1] if slab > 0 else -np.inf
        hi = self.boundaries[slab] if slab < self.n_shards - 1 else np.inf
        if not lo <= cut < hi:
            raise ValueError(
                f"cut {cut!r} falls outside slab {slab} interval [{lo}, {hi})"
            )
        self.boundaries = np.insert(self.boundaries, slab, float(cut))
        self.n_shards += 1

    def remove_cut(self, slab: int) -> None:
        """Merge ``slab`` with ``slab + 1``, shrinking by one shard."""
        if not 0 <= slab < self.n_shards - 1:
            raise ValueError(
                f"cannot merge slab {slab} with its right neighbour "
                f"(n_shards={self.n_shards})"
            )
        self.boundaries = np.delete(self.boundaries, slab)
        self.n_shards -= 1


def make_partitioner(
    strategy: str, db: "TrajectoryDatabase", n_shards: int
) -> HashPartitioner | SpatialPartitioner:
    """Build the named partitioner for ``db``."""
    if strategy == "hash":
        return HashPartitioner(n_shards)
    if strategy == "spatial":
        return SpatialPartitioner.from_database(db, n_shards)
    raise ValueError(
        f"unknown partition strategy {strategy!r}; choose from {PARTITIONERS}"
    )
