"""Database transforms: noise injection and resampling.

Used for failure-injection testing (how robust are the simplifiers to GPS
noise?) and for building controlled sampling-rate experiments.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


def add_gps_noise(
    db: TrajectoryDatabase,
    sigma: float,
    seed: int | None = None,
) -> TrajectoryDatabase:
    """A copy of ``db`` with i.i.d. Gaussian noise on the spatial coordinates.

    Timestamps are untouched (GPS clocks are far more accurate than fixes).
    """
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    rng = np.random.default_rng(seed)
    noisy = []
    for traj in db:
        pts = traj.points.copy()
        pts[:, :2] += rng.normal(0.0, sigma, size=(len(pts), 2))
        noisy.append(Trajectory(pts, traj_id=traj.traj_id))
    return TrajectoryDatabase(noisy)


def resample_regular(
    trajectory: Trajectory,
    interval: float,
) -> Trajectory:
    """Linearly resample a trajectory onto a regular time grid.

    The first and last original timestamps are preserved; interior positions
    are interpolated. Useful for building uniform-rate variants of
    heterogeneous data.
    """
    if interval <= 0:
        raise ValueError("interval must be positive")
    t0, t1 = float(trajectory.times[0]), float(trajectory.times[-1])
    times = np.arange(t0, t1, interval)
    if len(times) == 0 or times[-1] < t1:
        times = np.append(times, t1)
    if len(times) < 2:
        times = np.array([t0, t1])
    positions = trajectory.positions_at(times)
    return Trajectory(
        np.column_stack([positions, times]), traj_id=trajectory.traj_id
    )


def drop_points_randomly(
    db: TrajectoryDatabase,
    drop_fraction: float,
    seed: int | None = None,
) -> TrajectoryDatabase:
    """Simulate sensor dropouts: remove a random fraction of interior points."""
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError("drop_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)

    def keep(traj: Trajectory) -> list[int]:
        n = len(traj)
        interior = np.arange(1, n - 1)
        mask = rng.random(len(interior)) >= drop_fraction
        return sorted({0, n - 1, *(int(i) for i in interior[mask])})

    return db.map_simplify(keep)
