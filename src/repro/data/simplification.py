"""Mutable simplification state over a trajectory database.

Collective simplifiers (RL4QDTS and the "W" baseline adaptations) repeatedly
insert points into — or drop points from — a *simplified view* of the whole
database. :class:`SimplificationState` maintains, per trajectory, the sorted
list of kept point indices so that:

* inserting / dropping a point is ``O(m)`` worst case but ``O(log m)`` to
  locate (via :mod:`bisect`), where ``m`` is the number of kept points, and
* the *anchor segment* of any original point (the simplified segment that
  currently approximates it; paper, Section III-A) is found in ``O(log m)``.

Endpoints of every trajectory are always kept, matching the problem
definition.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

from repro.data.database import TrajectoryDatabase


class SimplificationState:
    """Per-trajectory kept-index bookkeeping for collective simplification."""

    __slots__ = ("database", "kept", "_total_kept")

    def __init__(self, database: TrajectoryDatabase, start_full: bool = False) -> None:
        self.database = database
        if start_full:
            self.kept: list[list[int]] = [
                list(range(len(t))) for t in database.trajectories
            ]
        else:
            self.kept = [[0, len(t) - 1] for t in database.trajectories]
        self._total_kept = sum(len(k) for k in self.kept)

    # ------------------------------------------------------------------ counts
    @property
    def total_kept(self) -> int:
        """The current size of the simplified database in points."""
        return self._total_kept

    def kept_count(self, traj_id: int) -> int:
        return len(self.kept[traj_id])

    def compression_ratio(self) -> float:
        return self._total_kept / self.database.total_points

    # -------------------------------------------------------------- membership
    def is_kept(self, traj_id: int, index: int) -> bool:
        kept = self.kept[traj_id]
        pos = bisect_left(kept, index)
        return pos < len(kept) and kept[pos] == index

    def kept_indices(self, traj_id: int) -> list[int]:
        """The sorted kept indices of one trajectory (a defensive copy)."""
        return list(self.kept[traj_id])

    def anchor_segment(self, traj_id: int, index: int) -> tuple[int, int]:
        """The kept indices ``(left, right)`` bracketing ``index``.

        For a kept interior point the anchors are its kept neighbours on both
        sides; for a dropped point they delimit the simplified segment that
        currently approximates it.
        """
        kept = self.kept[traj_id]
        pos = bisect_right(kept, index)
        if pos == 0:
            return kept[0], kept[1]
        if pos == len(kept):
            return kept[-2], kept[-1]
        left = kept[pos - 1]
        if left == index:
            # Kept point: bracket with both kept neighbours.
            if pos == 1:
                return kept[0], kept[1]
            return kept[pos - 2], kept[pos]
        return left, kept[pos]

    # ------------------------------------------------------------------ updates
    def insert(self, traj_id: int, index: int) -> None:
        """Keep original point ``index`` of trajectory ``traj_id``."""
        kept = self.kept[traj_id]
        pos = bisect_left(kept, index)
        if pos < len(kept) and kept[pos] == index:
            raise ValueError(f"point {index} of trajectory {traj_id} already kept")
        if not 0 <= index < len(self.database[traj_id]):
            raise IndexError(f"point index {index} out of range")
        kept.insert(pos, index)
        self._total_kept += 1

    def drop(self, traj_id: int, index: int) -> None:
        """Drop a kept interior point (endpoints cannot be dropped)."""
        kept = self.kept[traj_id]
        pos = bisect_left(kept, index)
        if pos >= len(kept) or kept[pos] != index:
            raise ValueError(f"point {index} of trajectory {traj_id} is not kept")
        if index == 0 or index == len(self.database[traj_id]) - 1:
            raise ValueError("cannot drop a trajectory endpoint")
        kept.pop(pos)
        self._total_kept -= 1

    # ------------------------------------------------------------- realization
    def materialize(self) -> TrajectoryDatabase:
        """Build the simplified :class:`TrajectoryDatabase` D' from this state."""
        return TrajectoryDatabase(
            [
                t.subsample(self.kept[t.traj_id])
                for t in self.database.trajectories
            ]
        )

    def copy(self) -> "SimplificationState":
        clone = SimplificationState.__new__(SimplificationState)
        clone.database = self.database
        clone.kept = [list(k) for k in self.kept]
        clone._total_kept = self._total_kept
        return clone


def insort_unique(sorted_list: list[int], value: int) -> bool:
    """Insert ``value`` into ``sorted_list`` if absent; return True if inserted."""
    pos = bisect_left(sorted_list, value)
    if pos < len(sorted_list) and sorted_list[pos] == value:
        return False
    insort(sorted_list, value)
    return True
