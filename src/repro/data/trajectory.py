"""The :class:`Trajectory` data model.

A trajectory is a sequence of time-stamped points ``p_i = (x_i, y_i, t_i)``
with strictly increasing timestamps (paper, Section III-A). Points are stored
as one contiguous ``(n, 3)`` float64 array so that the error measures in
:mod:`repro.errors` can operate vectorized over index ranges.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.data.bbox import BoundingBox


class Trajectory:
    """An immutable sequence of ``(x, y, t)`` points.

    Parameters
    ----------
    points:
        ``(n, 3)`` array-like with columns x, y, t. ``n >= 2`` and the t
        column must be strictly increasing.
    traj_id:
        Identifier of the trajectory within its database. Defaults to ``-1``
        for free-standing trajectories; :class:`repro.data.TrajectoryDatabase`
        re-assigns ids on construction.
    """

    __slots__ = ("points", "traj_id", "_bbox")

    def __init__(self, points: np.ndarray | Sequence, traj_id: int = -1) -> None:
        arr = np.asarray(points, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(f"expected an (n, 3) array, got shape {arr.shape}")
        if len(arr) < 2:
            raise ValueError("a trajectory needs at least 2 points")
        if not np.all(np.diff(arr[:, 2]) > 0):
            raise ValueError("timestamps must be strictly increasing")
        arr = np.ascontiguousarray(arr)
        arr.setflags(write=False)
        self.points = arr
        self.traj_id = int(traj_id)
        self._bbox: BoundingBox | None = None

    @classmethod
    def _wrap(cls, points: np.ndarray, traj_id: int = -1) -> "Trajectory":
        """Wrap an already-validated, C-contiguous, read-only ``(n, 3)`` view.

        Used by the columnar data plane to rebuild trajectories as zero-copy
        views into a mapped point matrix without re-running (or re-paying
        for) per-point validation. The caller vouches that ``points`` came
        out of a previously validated trajectory.
        """
        traj = object.__new__(cls)
        traj.points = points
        traj.traj_id = int(traj_id)
        traj._bbox = None
        return traj

    # ------------------------------------------------------------------ basics
    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self.points)

    def __getitem__(self, index):
        return self.points[index]

    def __repr__(self) -> str:
        return f"Trajectory(id={self.traj_id}, n={len(self)})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return self.traj_id == other.traj_id and np.array_equal(
            self.points, other.points
        )

    def __hash__(self) -> int:
        return hash((self.traj_id, len(self.points), self.points.tobytes()))

    # ------------------------------------------------------------- projections
    @property
    def xy(self) -> np.ndarray:
        """The ``(n, 2)`` spatial coordinates."""
        return self.points[:, :2]

    @property
    def times(self) -> np.ndarray:
        """The ``(n,)`` timestamps."""
        return self.points[:, 2]

    @property
    def duration(self) -> float:
        return float(self.points[-1, 2] - self.points[0, 2])

    @property
    def bounding_box(self) -> BoundingBox:
        if self._bbox is None:
            self._bbox = BoundingBox.from_points(self.points)
        return self._bbox

    def segment_lengths(self) -> np.ndarray:
        """Euclidean lengths of the ``n - 1`` consecutive segments."""
        return np.linalg.norm(np.diff(self.xy, axis=0), axis=1)

    def path_length(self) -> float:
        return float(self.segment_lengths().sum())

    def sampling_intervals(self) -> np.ndarray:
        """Time gaps between consecutive points."""
        return np.diff(self.times)

    # ------------------------------------------------------------ manipulation
    def subsample(self, indices: Sequence[int]) -> "Trajectory":
        """The simplified trajectory keeping only ``indices`` (sorted, unique).

        The first and last original points must be kept, matching the problem
        definition (``s_1 = 1`` and ``s_m = n``).
        """
        idx = np.asarray(sorted(set(int(i) for i in indices)), dtype=int)
        if len(idx) < 2 or idx[0] != 0 or idx[-1] != len(self) - 1:
            raise ValueError(
                "a simplification must keep the first and last points "
                f"(got indices {idx.tolist()} for length {len(self)})"
            )
        return Trajectory(self.points[idx], traj_id=self.traj_id)

    def slice_time(self, t_start: float, t_end: float) -> np.ndarray:
        """Points whose timestamp falls in ``[t_start, t_end]`` (may be empty)."""
        t = self.times
        mask = (t >= t_start) & (t <= t_end)
        return self.points[mask]

    def position_at(self, t: float) -> np.ndarray:
        """Linearly interpolated ``(x, y)`` location at time ``t``.

        Times outside the trajectory's span clamp to the endpoints. This is
        the synchronized position used by SED and by the similarity query.
        """
        times = self.times
        if t <= times[0]:
            return self.points[0, :2].copy()
        if t >= times[-1]:
            return self.points[-1, :2].copy()
        j = int(np.searchsorted(times, t, side="right")) - 1
        j = min(j, len(self) - 2)
        t0, t1 = times[j], times[j + 1]
        frac = 0.0 if t1 == t0 else (t - t0) / (t1 - t0)
        return self.points[j, :2] + frac * (self.points[j + 1, :2] - self.points[j, :2])

    def positions_at(self, ts: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`position_at` for an array of times -> ``(k, 2)``."""
        ts = np.asarray(ts, dtype=float)
        x = np.interp(ts, self.times, self.points[:, 0])
        y = np.interp(ts, self.times, self.points[:, 1])
        return np.column_stack([x, y])

    def reversed_spatially(self) -> "Trajectory":
        """The same route traversed in the opposite spatial order.

        Timestamps are kept increasing (re-used in order); useful for building
        direction-sensitive test fixtures.
        """
        pts = self.points.copy()
        pts[:, :2] = pts[::-1, :2]
        return Trajectory(pts, traj_id=self.traj_id)
