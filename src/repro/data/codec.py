"""Compact binary storage for trajectory databases.

The paper motivates simplification with storage cost: "storing the data is
expensive" (Section I). Point budgets are a proxy for bytes; this module
makes the bytes concrete, so benchmarks can report *actual storage* saved by
each simplifier rather than point counts alone.

The codec quantizes coordinates to fixed resolutions (``quantum_xy`` for
metres, ``quantum_t`` for seconds), delta-encodes consecutive points within
each trajectory, and stores the deltas as zig-zag varints — the standard
layout of practical trajectory stores. GPS deltas between consecutive fixes
are small, so most coordinates fit in 1-2 bytes instead of the 24 raw bytes
of three float64s.

The encoding is lossy only through quantization: decoding reproduces every
coordinate within ``quantum / 2``. Timestamps must remain strictly
increasing after quantization, so ``quantum_t`` must be below the minimum
sampling interval.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory

#: Raw storage cost of one point: three little-endian float64s.
RAW_POINT_BYTES = 24

_MAGIC = b"TDB1"


def zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers to unsigned: 0,-1,1,-2,... -> 0,1,2,3,..."""
    values = np.asarray(values, dtype=np.int64)
    return ((values << 1) ^ (values >> 63)).astype(np.uint64)


def zigzag_decode(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.uint64)
    return ((values >> np.uint64(1)).astype(np.int64)) ^ -(
        (values & np.uint64(1)).astype(np.int64)
    )


def write_varint(out: bytearray, value: int) -> None:
    """Append one LEB128 varint (non-negative) to ``out``."""
    if value < 0:
        raise ValueError("varints encode non-negative integers")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    """Read one varint at ``pos``; returns ``(value, next_pos)``."""
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise ValueError("truncated varint")
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7
        if shift > 70:
            raise ValueError("varint too long")


@dataclass(frozen=True, slots=True)
class CodecConfig:
    """Quantization resolutions of the codec.

    Attributes
    ----------
    quantum_xy:
        Spatial resolution in coordinate units (e.g. 0.01 = centimetres for
        metre coordinates). Decoded coordinates differ from the original by
        at most half of this.
    quantum_t:
        Temporal resolution in time units. Must stay below the minimum
        sampling interval or consecutive quantized timestamps could collide.
    """

    quantum_xy: float = 0.01
    quantum_t: float = 0.01

    def __post_init__(self) -> None:
        if self.quantum_xy <= 0 or self.quantum_t <= 0:
            raise ValueError("quanta must be positive")


def _quantize(traj: Trajectory, config: CodecConfig) -> np.ndarray:
    """Integer grid coordinates of a trajectory, shape ``(n, 3)`` int64."""
    scale = np.array([config.quantum_xy, config.quantum_xy, config.quantum_t])
    return np.round(traj.points / scale).astype(np.int64)


def encode_trajectory(traj: Trajectory, config: CodecConfig) -> bytes:
    """Delta + zig-zag varint encoding of one trajectory."""
    grid = _quantize(traj, config)
    deltas = np.diff(grid, axis=0, prepend=np.zeros((1, 3), dtype=np.int64))
    encoded = zigzag_encode(deltas.ravel())
    out = bytearray()
    write_varint(out, len(traj))
    for value in encoded.tolist():
        write_varint(out, int(value))
    return bytes(out)


def decode_trajectory(
    data: bytes, config: CodecConfig, traj_id: int = -1, pos: int = 0
) -> tuple[Trajectory, int]:
    """Decode one trajectory at ``pos``; returns it and the next offset."""
    n, pos = read_varint(data, pos)
    if n < 2:
        raise ValueError(f"corrupt stream: trajectory of length {n}")
    flat = np.empty(3 * n, dtype=np.uint64)
    for i in range(3 * n):
        value, pos = read_varint(data, pos)
        flat[i] = value
    deltas = zigzag_decode(flat).reshape(n, 3)
    grid = np.cumsum(deltas, axis=0)
    scale = np.array([config.quantum_xy, config.quantum_xy, config.quantum_t])
    return Trajectory(grid * scale, traj_id=traj_id), pos


def encode_database(db: TrajectoryDatabase, config: CodecConfig) -> bytes:
    """Encode a whole database into one self-describing byte blob."""
    out = bytearray(_MAGIC)
    header = np.array(
        [config.quantum_xy, config.quantum_t], dtype="<f8"
    ).tobytes()
    out.extend(header)
    write_varint(out, len(db))
    for traj in db:
        out.extend(encode_trajectory(traj, config))
    return bytes(out)


def decode_database(data: bytes) -> TrajectoryDatabase:
    """Decode a blob produced by :func:`encode_database`."""
    if data[:4] != _MAGIC:
        raise ValueError("not a trajectory database blob")
    quanta = np.frombuffer(data[4:20], dtype="<f8")
    config = CodecConfig(quantum_xy=float(quanta[0]), quantum_t=float(quanta[1]))
    count, pos = read_varint(data, 20)
    trajectories = []
    for traj_id in range(count):
        traj, pos = decode_trajectory(data, config, traj_id=traj_id, pos=pos)
        trajectories.append(traj)
    if pos != len(data):
        raise ValueError(f"{len(data) - pos} trailing bytes after decoding")
    return TrajectoryDatabase(trajectories)


@dataclass(frozen=True, slots=True)
class StorageReport:
    """Byte accounting for one database under the codec."""

    n_points: int
    raw_bytes: int
    encoded_bytes: int

    @property
    def bytes_per_point(self) -> float:
        return self.encoded_bytes / max(self.n_points, 1)

    @property
    def compression_factor(self) -> float:
        """How many times smaller than raw float64 storage."""
        return self.raw_bytes / max(self.encoded_bytes, 1)


def storage_report(
    db: TrajectoryDatabase, config: CodecConfig | None = None
) -> StorageReport:
    """Measure a database's raw and encoded storage footprint."""
    config = config or CodecConfig()
    encoded = encode_database(db, config)
    return StorageReport(
        n_points=db.total_points,
        raw_bytes=RAW_POINT_BYTES * db.total_points,
        encoded_bytes=len(encoded),
    )
