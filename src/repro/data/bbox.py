"""Axis-aligned spatio-temporal bounding boxes.

A box spans two spatial dimensions (x, y) and one temporal dimension (t).
Boxes are the common currency between the octree index
(:mod:`repro.index.octree`), range queries (:mod:`repro.queries.range_query`)
and workload generators (:mod:`repro.workloads`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """A closed axis-aligned box ``[xmin, xmax] x [ymin, ymax] x [tmin, tmax]``."""

    xmin: float
    xmax: float
    ymin: float
    ymax: float
    tmin: float
    tmax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax or self.tmin > self.tmax:
            raise ValueError(f"degenerate bounding box: {self}")

    @classmethod
    def from_points(cls, points: np.ndarray) -> "BoundingBox":
        """Tightest box around an ``(n, 3)`` array of ``(x, y, t)`` rows."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 3 or len(points) == 0:
            raise ValueError("expected a non-empty (n, 3) array")
        lo = points.min(axis=0)
        hi = points.max(axis=0)
        return cls(lo[0], hi[0], lo[1], hi[1], lo[2], hi[2])

    @property
    def center(self) -> tuple[float, float, float]:
        return (
            0.5 * (self.xmin + self.xmax),
            0.5 * (self.ymin + self.ymax),
            0.5 * (self.tmin + self.tmax),
        )

    @property
    def spans(self) -> tuple[float, float, float]:
        return (self.xmax - self.xmin, self.ymax - self.ymin, self.tmax - self.tmin)

    @property
    def volume(self) -> float:
        sx, sy, st = self.spans
        return sx * sy * st

    def contains_point(self, x: float, y: float, t: float) -> bool:
        return (
            self.xmin <= x <= self.xmax
            and self.ymin <= y <= self.ymax
            and self.tmin <= t <= self.tmax
        )

    def contains_points(self, points: np.ndarray) -> np.ndarray:
        """Vectorized membership test for an ``(n, 3)`` array; returns a bool mask."""
        points = np.asarray(points, dtype=float)
        return (
            (points[:, 0] >= self.xmin)
            & (points[:, 0] <= self.xmax)
            & (points[:, 1] >= self.ymin)
            & (points[:, 1] <= self.ymax)
            & (points[:, 2] >= self.tmin)
            & (points[:, 2] <= self.tmax)
        )

    def intersects(self, other: "BoundingBox") -> bool:
        return (
            self.xmin <= other.xmax
            and other.xmin <= self.xmax
            and self.ymin <= other.ymax
            and other.ymin <= self.ymax
            and self.tmin <= other.tmax
            and other.tmin <= self.tmax
        )

    def contains_box(self, other: "BoundingBox") -> bool:
        return (
            self.xmin <= other.xmin
            and other.xmax <= self.xmax
            and self.ymin <= other.ymin
            and other.ymax <= self.ymax
            and self.tmin <= other.tmin
            and other.tmax <= self.tmax
        )

    def split8(self) -> tuple["BoundingBox", ...]:
        """Split into the 8 octants used by the octree.

        Octant ``k`` (0-based) uses bit 0 for the x half, bit 1 for the y half
        and bit 2 for the t half (low half when the bit is 0).
        """
        cx, cy, ct = self.center
        octants = []
        for k in range(8):
            xlo, xhi = (self.xmin, cx) if not k & 1 else (cx, self.xmax)
            ylo, yhi = (self.ymin, cy) if not k & 2 else (cy, self.ymax)
            tlo, thi = (self.tmin, ct) if not k & 4 else (ct, self.tmax)
            octants.append(BoundingBox(xlo, xhi, ylo, yhi, tlo, thi))
        return tuple(octants)

    def expanded(self, dx: float, dy: float, dt: float) -> "BoundingBox":
        """A copy grown by the given margins on every side."""
        return BoundingBox(
            self.xmin - dx,
            self.xmax + dx,
            self.ymin - dy,
            self.ymax + dy,
            self.tmin - dt,
            self.tmax + dt,
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        return BoundingBox(
            min(self.xmin, other.xmin),
            max(self.xmax, other.xmax),
            min(self.ymin, other.ymin),
            max(self.ymax, other.ymax),
            min(self.tmin, other.tmin),
            max(self.tmax, other.tmax),
        )
