"""Dataset statistics mirroring Table I of the paper."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import TrajectoryDatabase


@dataclass(frozen=True, slots=True)
class DatasetStatistics:
    """The per-dataset statistics the paper reports (Table I)."""

    n_trajectories: int
    total_points: int
    avg_points_per_trajectory: float
    min_sampling_interval: float
    max_sampling_interval: float
    mean_sampling_interval: float
    mean_segment_length: float

    def as_row(self) -> dict[str, float]:
        """A flat dict suitable for printing a Table-I-style row."""
        return {
            "# of trajectories": self.n_trajectories,
            "Total # of points": self.total_points,
            "Ave. # of pts per traj": round(self.avg_points_per_trajectory, 1),
            "Sampling rate (s)": round(self.mean_sampling_interval, 2),
            "Average length (m)": round(self.mean_segment_length, 2),
        }


def spatial_scale(db: TrajectoryDatabase) -> float:
    """The database's characteristic trajectory scale.

    Defined as the median trajectory spatial diameter (the larger side of a
    trajectory's bounding box). Query extents and similarity thresholds
    default to fractions of this scale so that evaluation selectivity is
    preserved across dataset profiles and scaling factors — mirroring how
    the paper's 2km query boxes relate to its city-scale trajectories.
    """
    diameters = []
    for traj in db:
        box = traj.bounding_box
        diameters.append(max(box.xmax - box.xmin, box.ymax - box.ymin))
    return float(np.median(diameters))


def dataset_statistics(db: TrajectoryDatabase) -> DatasetStatistics:
    """Compute Table-I statistics for a database."""
    intervals = np.concatenate([t.sampling_intervals() for t in db])
    seg_lengths = np.concatenate([t.segment_lengths() for t in db])
    return DatasetStatistics(
        n_trajectories=len(db),
        total_points=db.total_points,
        avg_points_per_trajectory=db.total_points / len(db),
        min_sampling_interval=float(intervals.min()),
        max_sampling_interval=float(intervals.max()),
        mean_sampling_interval=float(intervals.mean()),
        mean_segment_length=float(seg_lengths.mean()),
    )
