"""Persistence for trajectory databases.

Three formats are supported:

* **NPZ** (preferred): the ragged point arrays are stored as one concatenated
  ``(N, 3)`` matrix plus prefix offsets — compact and loads in one shot.
* **CSV**: ``traj_id,x,y,t`` rows, for interoperability with external tools.
* **GeoJSON**: one LineString feature per trajectory with timestamps in a
  ``times`` property, the layout GIS tools (QGIS, kepler.gl) expect.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


def save_database(db: TrajectoryDatabase, path: str | Path) -> None:
    """Save a database; the format is chosen from the file suffix (.npz/.csv)."""
    path = Path(path)
    if path.suffix == ".npz":
        _save_npz(db, path)
    elif path.suffix == ".csv":
        _save_csv(db, path)
    elif path.suffix == ".geojson":
        _save_geojson(db, path)
    else:
        raise ValueError(
            f"unsupported suffix {path.suffix!r}; use .npz, .csv, or .geojson"
        )


def load_database(path: str | Path) -> TrajectoryDatabase:
    """Load a database saved by :func:`save_database`."""
    path = Path(path)
    if path.suffix == ".npz":
        return _load_npz(path)
    if path.suffix == ".csv":
        return _load_csv(path)
    if path.suffix == ".geojson":
        return _load_geojson(path)
    raise ValueError(
        f"unsupported suffix {path.suffix!r}; use .npz, .csv, or .geojson"
    )


def _save_npz(db: TrajectoryDatabase, path: Path) -> None:
    points = db.all_points()
    lengths = np.array([len(t) for t in db], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)])
    np.savez_compressed(path, points=points, offsets=offsets)


def _load_npz(path: Path) -> TrajectoryDatabase:
    with np.load(path) as data:
        points = data["points"]
        offsets = data["offsets"]
    trajectories = [
        Trajectory(points[offsets[i] : offsets[i + 1]], traj_id=i)
        for i in range(len(offsets) - 1)
    ]
    return TrajectoryDatabase(trajectories)


def _save_csv(db: TrajectoryDatabase, path: Path) -> None:
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["traj_id", "x", "y", "t"])
        for traj in db:
            for x, y, t in traj.points:
                # repr(float(...)) round-trips full float64 precision.
                writer.writerow(
                    [traj.traj_id, repr(float(x)), repr(float(y)), repr(float(t))]
                )


def _load_csv(path: Path) -> TrajectoryDatabase:
    rows_by_id: dict[int, list[tuple[float, float, float]]] = {}
    with open(path, newline="") as f:
        reader = csv.DictReader(f)
        for row in reader:
            rows_by_id.setdefault(int(row["traj_id"]), []).append(
                (float(row["x"]), float(row["y"]), float(row["t"]))
            )
    trajectories = [
        Trajectory(np.array(rows_by_id[tid]), traj_id=i)
        for i, tid in enumerate(sorted(rows_by_id))
    ]
    return TrajectoryDatabase(trajectories)


def _save_geojson(db: TrajectoryDatabase, path: Path) -> None:
    features = []
    for traj in db:
        features.append(
            {
                "type": "Feature",
                "geometry": {
                    "type": "LineString",
                    "coordinates": [
                        [float(x), float(y)] for x, y in traj.xy
                    ],
                },
                "properties": {
                    "traj_id": traj.traj_id,
                    "times": [float(t) for t in traj.times],
                },
            }
        )
    payload = {"type": "FeatureCollection", "features": features}
    path.write_text(json.dumps(payload))


def _load_geojson(path: Path) -> TrajectoryDatabase:
    payload = json.loads(path.read_text())
    if payload.get("type") != "FeatureCollection":
        raise ValueError("expected a GeoJSON FeatureCollection")
    trajectories = []
    for i, feature in enumerate(payload["features"]):
        geometry = feature.get("geometry", {})
        if geometry.get("type") != "LineString":
            raise ValueError(
                f"feature {i}: only LineString trajectories are supported"
            )
        coords = np.asarray(geometry["coordinates"], dtype=float)
        times = np.asarray(feature.get("properties", {}).get("times"), dtype=float)
        if times.shape != (len(coords),):
            raise ValueError(
                f"feature {i}: 'times' property must list one timestamp "
                "per coordinate"
            )
        trajectories.append(
            Trajectory(np.column_stack([coords, times]), traj_id=i)
        )
    return TrajectoryDatabase(trajectories)
