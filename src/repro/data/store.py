"""Pluggable array-store providers for the columnar data plane.

A *store* owns the physical placement of immutable numpy arrays — the CSR
point matrix and offsets that every query layer reads — and hands out
small, picklable :class:`ArrayHandle` descriptors that resolve back to
read-only views of the same bytes.

Two providers:

* :class:`HeapStore` (default) keeps arrays on the process heap.  Its
  handles carry the array itself, so pickling a handle copies the bytes —
  exactly the behaviour the executor pipeline had before stores existed.
* :class:`SharedMemoryStore` copies each array once into a named POSIX
  shared-memory segment (``/dev/shm/repro_*``).  Its handles carry only
  ``(name, shape, dtype)``; any process that unpickles one *maps* the
  segment instead of receiving a copy, which is what makes K-shard worker
  start-up O(1) in shard bytes.

Lifecycle rules (the part that is easy to get wrong):

* The store that *creates* a segment owns it and is responsible for
  ``unlink``.  ``close()`` unlinks every owned segment; a
  ``weakref.finalize`` hook guarantees the same at interpreter exit.
* Attaching is refcounted per process (many handles may resolve the same
  segment) and detaching never unlinks.
* On Python < 3.13 ``SharedMemory`` registers with the multiprocessing
  resource tracker on *attach* as well as create.  Executor workers share
  the parent's tracker process, whose cache is a per-name set — so the
  duplicate registration is harmless and is deliberately left alone (an
  attach-side unregister would erase the owner's registration).
* ``close()`` also sweeps ``/dev/shm`` for leftover segments under the
  store's name prefix.  Workers republish compacted tiers under derived
  prefixes of the same family, so a SIGTERM'd worker cannot leak: the
  owning store's close/atexit sweep reclaims its segments.
"""

from __future__ import annotations

import os
import secrets
import threading
import weakref

import numpy as np

try:  # POSIX + Windows both provide it, but keep the import soft anyway
    from multiprocessing import shared_memory as _shared_memory
    from multiprocessing import resource_tracker as _resource_tracker
except ImportError:  # pragma: no cover - exotic platforms only
    _shared_memory = None
    _resource_tracker = None

__all__ = [
    "STORES",
    "StoreError",
    "ArrayHandle",
    "HeapArrayHandle",
    "SharedArrayHandle",
    "HeapStore",
    "SharedMemoryStore",
    "make_store",
    "derive_store",
    "sweep_segments",
    "shared_memory_available",
]

#: Provider names accepted by :func:`make_store` (and ``--store``).
STORES = ("heap", "shm")

#: Every shared segment name starts with this, so leak checks (and the
#: close-time sweep) can recognise ours in ``/dev/shm``.
SEGMENT_PREFIX = "repro_"

_SHM_DIR = "/dev/shm"


class StoreError(RuntimeError):
    """Raised for store misuse: unknown provider, closed store, bad attach."""


def shared_memory_available() -> bool:
    """Whether this platform can host a :class:`SharedMemoryStore`."""
    return _shared_memory is not None


# ---------------------------------------------------------------------------
# Per-process attach registry (refcounted; shared by all handles)
# ---------------------------------------------------------------------------

class _Attachment:
    __slots__ = ("shm", "refcount")

    def __init__(self, shm) -> None:
        self.shm = shm
        self.refcount = 0


_attachments: dict[str, _Attachment] = {}
_attach_lock = threading.Lock()


def _attach_segment(name: str):
    """Open (or reuse) a mapping of ``name``; bump its refcount."""
    if _shared_memory is None:  # pragma: no cover
        raise StoreError("shared memory is not available on this platform")
    with _attach_lock:
        entry = _attachments.get(name)
        if entry is None:
            try:
                shm = _shared_memory.SharedMemory(name=name)
            except FileNotFoundError as exc:
                raise StoreError(
                    f"shared segment {name!r} does not exist (was its "
                    "owning store closed?)"
                ) from exc
            # Python < 3.13 registers attachments with the resource
            # tracker as if they were creations. Executor workers share
            # the parent's tracker process (multiprocessing hands the
            # tracker fd to both fork and spawn children), whose cache is
            # a per-name set — so the duplicate registration is a no-op
            # and MUST NOT be "undone" here: an unregister would erase the
            # owner's registration and break its unlink accounting.
            entry = _Attachment(shm)
            _attachments[name] = entry
        entry.refcount += 1
        return entry.shm


def _detach_segment(name: str) -> None:
    """Drop one reference; unmap when the last local reference goes."""
    with _attach_lock:
        entry = _attachments.get(name)
        if entry is None:
            return
        entry.refcount -= 1
        if entry.refcount > 0:
            return
        del _attachments[name]
        shm = entry.shm
    try:
        shm.close()
    except BufferError:
        # An ndarray view still points into the mapping; the mapping is
        # freed at process exit instead.  Never fatal.
        pass


def _untrack(tracked_name: str) -> None:
    if _resource_tracker is None:  # pragma: no cover
        return
    try:
        _resource_tracker.unregister(tracked_name, "shared_memory")
    except Exception:  # pragma: no cover - tracker already gone
        pass


# ---------------------------------------------------------------------------
# Handles
# ---------------------------------------------------------------------------

class ArrayHandle:
    """A picklable reference to an immutable array in some store."""

    __slots__ = ()

    kind = "abstract"

    def resolve(self) -> np.ndarray:
        """Return a read-only ndarray view of the stored bytes."""
        raise NotImplementedError

    def release(self) -> None:
        """Drop this handle's attachment (never unlinks)."""


class HeapArrayHandle(ArrayHandle):
    """Handle carrying the array itself; pickling it copies the bytes."""

    __slots__ = ("_array",)

    kind = "heap"

    def __init__(self, array: np.ndarray) -> None:
        arr = np.ascontiguousarray(array)
        if arr is array and arr.flags.writeable:
            arr = arr.view()
        arr.setflags(write=False)
        self._array = arr

    def resolve(self) -> np.ndarray:
        return self._array

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeapArrayHandle(shape={self._array.shape}, dtype={self._array.dtype})"


class SharedArrayHandle(ArrayHandle):
    """Handle naming a shared segment; unpickles to a zero-copy mapping."""

    __slots__ = ("name", "shape", "dtype", "_array", "_attached")

    kind = "shm"

    def __init__(self, name: str, shape: tuple[int, ...], dtype) -> None:
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self._array = None
        self._attached = False

    def __getstate__(self):
        return (self.name, self.shape, self.dtype.str)

    def __setstate__(self, state) -> None:
        name, shape, dtype = state
        self.name = name
        self.shape = tuple(shape)
        self.dtype = np.dtype(dtype)
        self._array = None
        self._attached = False

    def resolve(self) -> np.ndarray:
        if self._array is None:
            shm = _attach_segment(self.name)
            self._attached = True
            nbytes = int(np.prod(self.shape)) * self.dtype.itemsize
            if shm.size < nbytes:
                _detach_segment(self.name)
                self._attached = False
                raise StoreError(
                    f"shared segment {self.name!r} is smaller than the "
                    f"declared array ({shm.size} < {nbytes} bytes)"
                )
            arr = np.ndarray(self.shape, dtype=self.dtype, buffer=shm.buf)
            arr.setflags(write=False)
            self._array = arr
        return self._array

    def release(self) -> None:
        self._array = None
        if self._attached:
            self._attached = False
            _detach_segment(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SharedArrayHandle({self.name!r}, shape={self.shape}, dtype={self.dtype})"


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------

class HeapStore:
    """Default provider: arrays live on the process heap (today's layout)."""

    kind = "heap"
    prefix = None

    def __init__(self) -> None:
        self._puts = 0
        self._bytes_put = 0

    def put(self, array: np.ndarray, label: str = "") -> HeapArrayHandle:
        handle = HeapArrayHandle(array)
        self._puts += 1
        self._bytes_put += handle.resolve().nbytes
        return handle

    def stats(self) -> dict:
        """Placement counters (the ``metrics`` report's ``store`` section).

        Heap arrays die with their last reference, so only cumulative put
        traffic is observable — there is no resident-segment count to
        report, unlike :meth:`SharedMemoryStore.stats`.
        """
        return {"kind": self.kind, "puts": self._puts, "bytes_put": self._bytes_put}

    def spec(self) -> tuple[str, None]:
        """Picklable description from which :func:`make_store` rebuilds."""
        return ("heap", None)

    @property
    def closed(self) -> bool:
        return False

    def drop(self, handle: ArrayHandle) -> None:
        """Nothing to unlink; the array dies with its last reference."""

    def close(self) -> None:
        """Nothing to reclaim; heap arrays are garbage collected."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "HeapStore()"


def _cleanup_store(owned: dict, prefix: str) -> None:
    """Finalizer body shared by ``close()`` and the atexit/GC hook."""
    for shm in list(owned.values()):
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - best effort at shutdown
            pass
        try:
            shm.close()
        except Exception:  # pragma: no cover
            pass
    owned.clear()
    sweep_segments(prefix)


class SharedMemoryStore:
    """Provider backed by named POSIX shared-memory segments.

    ``prefix`` names the segment *family*: every segment this store (or a
    store derived from it via :meth:`derive`) creates starts with it, and
    ``close()`` sweeps the whole family — including segments published by
    worker processes that died without cleaning up.
    """

    kind = "shm"

    def __init__(self, prefix: str | None = None) -> None:
        if _shared_memory is None:  # pragma: no cover
            raise StoreError("shared memory is not available on this platform")
        if prefix is None:
            prefix = f"{SEGMENT_PREFIX}{os.getpid():x}_{secrets.token_hex(4)}"
        if not prefix.startswith(SEGMENT_PREFIX):
            raise StoreError(
                f"shared store prefix must start with {SEGMENT_PREFIX!r}, "
                f"got {prefix!r}"
            )
        self.prefix = prefix
        self._owned: dict[str, object] = {}
        self._counter = 0
        self._puts = 0
        self._bytes_put = 0
        self._closed = False
        self._finalizer = weakref.finalize(
            self, _cleanup_store, self._owned, self.prefix
        )

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, array: np.ndarray, label: str = "") -> SharedArrayHandle:
        if self._closed:
            raise StoreError("store is closed")
        arr = np.ascontiguousarray(array)
        name = f"{self.prefix}.{self._counter}"
        if label:
            name = f"{name}.{label}"
        self._counter += 1
        shm = _shared_memory.SharedMemory(
            name=name, create=True, size=max(arr.nbytes, 1)
        )
        if arr.nbytes:
            dest = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            dest[...] = arr
            del dest
        self._owned[name] = shm
        self._puts += 1
        self._bytes_put += arr.nbytes
        return SharedArrayHandle(name, arr.shape, arr.dtype)

    def stats(self) -> dict:
        """Resident segments + cumulative put traffic (``metrics`` report)."""
        return {
            "kind": self.kind,
            "puts": self._puts,
            "bytes_put": self._bytes_put,
            "segments": len(self._owned),
            "segment_bytes": sum(shm.size for shm in self._owned.values()),
        }

    def spec(self) -> tuple[str, str]:
        return ("shm", self.prefix)

    def derive(self, suffix: str) -> "SharedMemoryStore":
        """A store in the same family (covered by this family's sweep)."""
        return SharedMemoryStore(prefix=f"{self.prefix}_{suffix}")

    def drop(self, handle: SharedArrayHandle) -> None:
        """Unlink one owned segment early (e.g. a superseded epoch)."""
        shm = self._owned.pop(handle.name, None)
        if shm is None:
            return
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
        try:
            shm.close()
        except BufferError:
            pass

    def close(self) -> None:
        """Unlink every owned segment and sweep the prefix family."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _cleanup_store(self._owned, self.prefix)

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else f"{len(self._owned)} segments"
        return f"SharedMemoryStore(prefix={self.prefix!r}, {state})"


def sweep_segments(prefix: str) -> list[str]:
    """Best-effort unlink of every ``/dev/shm`` entry under ``prefix``.

    Reclaims segments whose owning process died without running its
    finalizers (SIGTERM'd/killed workers).  Only meaningful on platforms
    that expose shared memory as files; elsewhere it is a no-op.
    """
    if not prefix or not prefix.startswith(SEGMENT_PREFIX):
        return []
    if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
        return []
    removed = []
    for entry in os.listdir(_SHM_DIR):
        if not entry.startswith(prefix):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
        except OSError:  # pragma: no cover - raced with another sweeper
            continue
        # The creator registered it with the resource tracker; tell the
        # tracker it is gone so exit-time cleanup does not warn.
        _untrack("/" + entry)
        removed.append(entry)
    return removed


def derive_store(spec, tag: str = ""):
    """A store for a *runtime* (possibly in a worker process).

    Heap specs pass through. For a shared spec ``("shm", family_prefix)``
    the returned store gets a unique sub-prefix of the family: closing it
    can only reclaim its own segments, while the family owner's
    close/atexit sweep still covers everything it published — including
    segments orphaned by a SIGTERM'd worker. Store *instances* pass
    through unchanged (the caller keeps ownership).
    """
    if isinstance(spec, (HeapStore, SharedMemoryStore)):
        return spec
    if spec is None:
        return HeapStore()
    if isinstance(spec, (tuple, list)):
        kind, prefix = spec
    else:
        kind, prefix = spec, None
    if kind == "heap":
        return HeapStore()
    if kind == "shm":
        if prefix is None:
            return SharedMemoryStore()
        unique = f"{prefix}_{tag or 'r'}{os.getpid():x}_{secrets.token_hex(3)}"
        return SharedMemoryStore(prefix=unique)
    raise StoreError(f"unknown store {kind!r}; expected one of {STORES}")


def make_store(spec="heap"):
    """Build (or pass through) a store from a name, spec tuple, or instance.

    Accepts ``"heap"``, ``"shm"``, a ``(kind, prefix)`` tuple as produced
    by ``store.spec()``, ``None`` (heap), or an existing store instance.
    """
    if isinstance(spec, (HeapStore, SharedMemoryStore)):
        return spec
    if spec is None:
        return HeapStore()
    if isinstance(spec, (tuple, list)):
        if len(spec) != 2:
            raise StoreError(f"store spec must be (kind, prefix), got {spec!r}")
        kind, prefix = spec
    else:
        kind, prefix = spec, None
    if kind == "heap":
        return HeapStore()
    if kind == "shm":
        return SharedMemoryStore(prefix=prefix)
    raise StoreError(f"unknown store {kind!r}; expected one of {STORES}")
