"""Stay-point detection and stay-aware compression.

The paper's opening example of a droppable point (Section I): "if the
location of an object is sampled regularly and the object does not move for
a while then only the first and last positions during the period of
inactivity are important". This module implements that observation directly:

* :func:`detect_stay_points` — find maximal episodes during which the object
  stays within a spatial radius for at least a minimum duration (the
  classical stay-point definition of Li et al., GIS'08);
* :func:`stay_aware_simplify` — the corresponding rule-based simplifier:
  keep every *movement* point but collapse each stay episode to its first
  and last samples.

The simplifier is deliberately naive — it has no budget and no learning —
which makes it a useful diagnostic floor: on stop-heavy data (Geolife) it
removes a large share of points for free, and any budgeted method should
spend its budget on the remaining movement structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory


@dataclass(frozen=True, slots=True)
class StayPoint:
    """One stay episode of a trajectory."""

    start_index: int
    end_index: int  # inclusive
    x: float  # centroid
    y: float
    t_arrive: float
    t_leave: float

    @property
    def duration(self) -> float:
        return self.t_leave - self.t_arrive

    @property
    def n_points(self) -> int:
        return self.end_index - self.start_index + 1


def detect_stay_points(
    trajectory: Trajectory,
    radius: float,
    min_duration: float,
) -> list[StayPoint]:
    """Maximal episodes within ``radius`` of their anchor for ``min_duration``.

    The standard two-pointer sweep: anchor at point ``i``, extend ``j`` while
    every point stays within ``radius`` of the anchor; if the dwell time
    reaches ``min_duration`` the episode ``[i, j]`` is a stay point and the
    sweep resumes after it.

    Parameters
    ----------
    trajectory:
        The trajectory to scan.
    radius:
        Spatial tolerance (same units as the coordinates).
    min_duration:
        Minimum dwell time (same units as the timestamps).
    """
    if radius < 0 or min_duration < 0:
        raise ValueError("radius and min_duration must be non-negative")
    points = trajectory.points
    n = len(points)
    stays: list[StayPoint] = []
    i = 0
    while i < n - 1:
        anchor = points[i, :2]
        j = i
        while j + 1 < n:
            if np.linalg.norm(points[j + 1, :2] - anchor) > radius:
                break
            j += 1
        dwell = points[j, 2] - points[i, 2]
        if j > i and dwell >= min_duration:
            segment = points[i : j + 1]
            stays.append(
                StayPoint(
                    start_index=i,
                    end_index=j,
                    x=float(segment[:, 0].mean()),
                    y=float(segment[:, 1].mean()),
                    t_arrive=float(points[i, 2]),
                    t_leave=float(points[j, 2]),
                )
            )
            i = j + 1
        else:
            i += 1
    return stays


def stay_aware_simplify(
    trajectory: Trajectory,
    radius: float,
    min_duration: float,
) -> list[int]:
    """Kept indices: all movement points, stay episodes collapsed to 2 points.

    Keeps the trajectory endpoints, every point outside a stay episode, and
    the first and last point of each episode — exactly the paper's intuition
    of which points "carry information".
    """
    n = len(trajectory)
    stays = detect_stay_points(trajectory, radius, min_duration)
    dropped = np.zeros(n, dtype=bool)
    for stay in stays:
        dropped[stay.start_index + 1 : stay.end_index] = True
    dropped[0] = dropped[n - 1] = False
    return [i for i in range(n) if not dropped[i]]


def stay_aware_simplify_database(
    db: TrajectoryDatabase,
    radius: float,
    min_duration: float,
) -> TrajectoryDatabase:
    """Apply :func:`stay_aware_simplify` to every trajectory."""
    return db.map_simplify(
        lambda t: stay_aware_simplify(t, radius, min_duration)
    )


def stay_statistics(
    db: TrajectoryDatabase,
    radius: float,
    min_duration: float,
) -> dict[str, float]:
    """Database-level dwell statistics: how stop-heavy is this data?

    Returns the number of stay episodes, the fraction of points inside
    stays, and the mean dwell duration — the quantities that predict how
    much a stay-aware pass can save.
    """
    n_stays = 0
    stay_points = 0
    durations: list[float] = []
    for traj in db:
        for stay in detect_stay_points(traj, radius, min_duration):
            n_stays += 1
            stay_points += stay.n_points
            durations.append(stay.duration)
    return {
        "n_stays": float(n_stays),
        "stay_point_fraction": stay_points / db.total_points,
        "mean_dwell": float(np.mean(durations)) if durations else 0.0,
    }
