"""Experiment drivers shared by the benchmark harness.

A *method* is a named callable ``(db, ratio) -> simplified_db``. The drivers
run methods across compression ratios against one
:class:`~repro.eval.harness.QueryAccuracyEvaluator` and collect per-task F1
rows — the exact series the paper's comparison figures plot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.baselines.registry import BaselineSpec, simplify_database
from repro.baselines.rlts import RLTSPolicy
from repro.core.rl4qdts import RL4QDTS
from repro.data.database import TrajectoryDatabase
from repro.eval.harness import ALL_TASKS, QueryAccuracyEvaluator

Method = Callable[[TrajectoryDatabase, float], TrajectoryDatabase]


@dataclass(slots=True)
class MethodResult:
    """One (method, ratio) evaluation row."""

    method: str
    ratio: float
    scores: dict[str, float] = field(default_factory=dict)
    simplify_seconds: float = 0.0

    def as_row(self) -> dict:
        row: dict = {"method": self.method, "ratio": self.ratio}
        row.update(self.scores)
        row["time_s"] = round(self.simplify_seconds, 3)
        return row


def baseline_method(
    spec: BaselineSpec, rlts_policy: RLTSPolicy | None = None
) -> Method:
    """Wrap a baseline spec as a method callable."""

    def method(db: TrajectoryDatabase, ratio: float) -> TrajectoryDatabase:
        return simplify_database(db, ratio, spec, rlts_policy=rlts_policy)

    return method


def rl4qdts_method(model: RL4QDTS, seed: int = 0) -> Method:
    """Wrap a trained RL4QDTS model as a method callable."""

    def method(db: TrajectoryDatabase, ratio: float) -> TrajectoryDatabase:
        return model.simplify(db, budget_ratio=ratio, seed=seed)

    return method


def compare_methods(
    db: TrajectoryDatabase,
    methods: Mapping[str, Method],
    ratios: Sequence[float],
    evaluator: QueryAccuracyEvaluator,
    tasks: tuple[str, ...] = ALL_TASKS,
) -> list[MethodResult]:
    """Evaluate every method at every ratio; returns one row per pair."""
    results: list[MethodResult] = []
    for ratio in ratios:
        for name, method in methods.items():
            start = time.perf_counter()
            simplified = method(db, ratio)
            elapsed = time.perf_counter() - start
            scores = evaluator.evaluate(simplified, tasks)
            results.append(
                MethodResult(
                    method=name,
                    ratio=ratio,
                    scores=scores,
                    simplify_seconds=elapsed,
                )
            )
    return results


def format_results_table(
    results: Sequence[MethodResult], tasks: tuple[str, ...] = ALL_TASKS
) -> str:
    """A printable fixed-width table of comparison rows."""
    headers = ["method", "ratio", *tasks, "time_s"]
    widths = [max(24, len(headers[0])), 7] + [11] * len(tasks) + [8]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in results:
        cells = [
            r.method.ljust(widths[0]),
            f"{r.ratio:.4f}".ljust(widths[1]),
            *(
                f"{r.scores.get(t, float('nan')):.4f}".ljust(11)
                for t in tasks
            ),
            f"{r.simplify_seconds:.2f}".ljust(8),
        ]
        lines.append("  ".join(cells))
    return "\n".join(lines)
