"""Evaluation harness: query-accuracy F1 over the paper's five query tasks."""

from repro.eval.harness import QuerySuiteConfig, QueryAccuracyEvaluator, ALL_TASKS
from repro.eval.deformation import mean_sed_deformation, query_deformation
from repro.eval.stats import Summary, summarize, sign_test, bootstrap_diff_ci
from repro.eval.report import ExperimentTable, series_table, format_cell
from repro.eval.experiments import (
    MethodResult,
    compare_methods,
    baseline_method,
    rl4qdts_method,
)

__all__ = [
    "QuerySuiteConfig",
    "QueryAccuracyEvaluator",
    "ALL_TASKS",
    "mean_sed_deformation",
    "query_deformation",
    "MethodResult",
    "compare_methods",
    "baseline_method",
    "rl4qdts_method",
    "Summary",
    "summarize",
    "sign_test",
    "bootstrap_diff_ci",
    "ExperimentTable",
    "series_table",
    "format_cell",
]
