"""Statistical summaries for experiment results.

The paper reports averages and standard deviations over 50 runs of the
(stochastic) RL4QDTS inference (Section V-A). This module provides those
summaries plus bootstrap confidence intervals and a paired sign test, so
benchmark output can state not only *who wins* but how confidently.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb

import numpy as np


@dataclass(frozen=True, slots=True)
class Summary:
    """Location and spread of one metric over repeated runs."""

    mean: float
    std: float
    n: int
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.n})"


def summarize(
    values,
    confidence: float = 0.95,
    n_bootstrap: int = 2000,
    seed: int = 0,
) -> Summary:
    """Mean, sample std, and a bootstrap percentile CI of the mean.

    Parameters
    ----------
    values:
        The per-run metric values (at least one).
    confidence:
        Two-sided confidence level of the interval.
    n_bootstrap:
        Bootstrap resamples; 2000 is plenty for 95% percentile intervals.
    seed:
        Resampling seed (results are deterministic given it).
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one value")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    if arr.size == 1:
        return Summary(mean, 0.0, 1, mean, mean)
    rng = np.random.default_rng(seed)
    samples = rng.choice(arr, size=(n_bootstrap, arr.size), replace=True)
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return Summary(mean, std, int(arr.size), float(lo), float(hi))


def sign_test(a, b) -> float:
    """Two-sided paired sign test p-value for metric series ``a`` vs ``b``.

    Ties are discarded (the standard treatment). A small p-value indicates
    the two methods genuinely differ across paired runs; with few pairs the
    test is conservative.
    """
    a = np.asarray(list(a), dtype=float)
    b = np.asarray(list(b), dtype=float)
    if a.shape != b.shape:
        raise ValueError("paired series must have equal length")
    diffs = a - b
    wins = int((diffs > 0).sum())
    losses = int((diffs < 0).sum())
    n = wins + losses
    if n == 0:
        return 1.0
    k = min(wins, losses)
    # Two-sided binomial tail under p = 1/2.
    tail = sum(comb(n, i) for i in range(k + 1)) / 2.0**n
    return float(min(1.0, 2.0 * tail))


def bootstrap_diff_ci(
    a,
    b,
    confidence: float = 0.95,
    n_bootstrap: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap CI of ``mean(a) - mean(b)`` for *paired* runs.

    Resamples pairs, so run-to-run correlation (same seeds, same databases)
    is respected. The interval excluding zero is evidence of a real gap.
    """
    a = np.asarray(list(a), dtype=float)
    b = np.asarray(list(b), dtype=float)
    if a.shape != b.shape or a.size == 0:
        raise ValueError("paired series must be equally sized and non-empty")
    diffs = a - b
    if diffs.size == 1:
        return float(diffs[0]), float(diffs[0])
    rng = np.random.default_rng(seed)
    samples = rng.choice(diffs, size=(n_bootstrap, diffs.size), replace=True)
    means = samples.mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(lo), float(hi)
