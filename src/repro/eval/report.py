"""Tabular experiment reports.

Every benchmark regenerates one of the paper's tables or figure series. This
module gives them a common output format: an :class:`ExperimentTable` that
renders aligned plain text (for terminal bench output), GitHub markdown (for
``EXPERIMENTS.md``), and CSV (for downstream plotting) — all from the same
rows, so the three never drift apart.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence


def format_cell(value) -> str:
    """Human-friendly formatting: floats get 4 significant digits."""
    if isinstance(value, bool) or value is None:
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class ExperimentTable:
    """One experiment's result table.

    Parameters
    ----------
    title:
        Table caption, e.g. ``"Table II: ablation (Geolife profile)"``.
    columns:
        Ordered column names.
    rows:
        Added via :meth:`add_row`; each row must match ``columns``.
    """

    title: str
    columns: Sequence[str]
    rows: list[list] = field(default_factory=list)

    def add_row(self, *values, **named) -> None:
        """Append one row, positionally or by column name (not both)."""
        if values and named:
            raise ValueError("pass positional or named values, not both")
        if named:
            missing = set(self.columns) - set(named)
            extra = set(named) - set(self.columns)
            if missing or extra:
                raise ValueError(
                    f"row mismatch: missing {sorted(missing)}, "
                    f"unexpected {sorted(extra)}"
                )
            values = tuple(named[c] for c in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def __len__(self) -> int:
        return len(self.rows)

    # --------------------------------------------------------------- rendering
    def _cells(self) -> list[list[str]]:
        return [[format_cell(v) for v in row] for row in self.rows]

    def render_text(self) -> str:
        """Aligned plain-text rendering for terminal output."""
        header = [str(c) for c in self.columns]
        body = self._cells()
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [self.title]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured markdown table with a bold caption."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(str(c) for c in self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self._cells():
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def render_csv(self) -> str:
        out = io.StringIO()
        writer = csv.writer(out)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return out.getvalue()

    # ----------------------------------------------------------------- output
    def print(self) -> None:
        """Print the text rendering (benchmark harness convention)."""
        print()
        print(self.render_text())

    def save_csv(self, path: str | Path) -> None:
        Path(path).write_text(self.render_csv())

    def save_markdown(self, path: str | Path) -> None:
        Path(path).write_text(self.render_markdown() + "\n")


def series_table(
    title: str,
    x_name: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
) -> ExperimentTable:
    """A figure-style table: one x column plus one column per method.

    This is the shape of the paper's line plots (Figs. 4-9): F1 per
    compression ratio per method.
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} values, "
                f"expected {len(x_values)}"
            )
    table = ExperimentTable(title, [x_name, *series.keys()])
    for i, x in enumerate(x_values):
        table.add_row(x, *(series[name][i] for name in series))
    return table
