"""Query-accuracy evaluation over the paper's five query tasks.

Given an original database ``D``, an evaluator precomputes ground-truth
results for a fixed set of queries of each task; :meth:`evaluate` then runs
the same queries on a simplified database ``D'`` and reports the mean
F1-score per task (paper, Section III-B):

* ``range``      — range queries from a workload distribution,
* ``knn_edr``    — kNN under EDR,
* ``knn_t2vec``  — kNN under the learned embedding similarity,
* ``similarity`` — synchronized-distance threshold queries,
* ``clustering`` — TRACLUS pair-counting F1 (on a trajectory subset, since
  segment grouping is quadratic).

The evaluator is built once per experiment and reused across methods and
compression ratios so all methods face identical queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.stats import spatial_scale
from repro.queries.clustering import TraclusConfig, traclus_cluster
from repro.queries.engine import QueryEngine
from repro.queries.knn import knn_query_batch
from repro.queries.metrics import clustering_f1, f1_score
from repro.queries.similarity import similarity_query_batch
from repro.queries.t2vec import T2VecEmbedder
from repro.workloads.generators import RangeQueryWorkload

ALL_TASKS = ("range", "knn_edr", "knn_t2vec", "similarity", "clustering")


@dataclass(frozen=True, slots=True)
class QuerySuiteConfig:
    """Sizes and thresholds of the evaluation query suite.

    ``None`` thresholds are derived from the database's spatial extent at
    evaluator construction (mirroring the paper's dataset-relative query
    parameters: 2km boxes, 2km EDR threshold, 5km similarity threshold on a
    ~50km city).
    """

    n_range_queries: int = 50
    range_distribution: str = "data"
    n_knn_queries: int = 8
    k: int = 3
    edr_eps: float | None = None
    n_similarity_queries: int = 8
    similarity_delta: float | None = None
    clustering_subset: int = 25
    traclus_eps: float | None = None
    traclus_min_lns: int = 3
    seed: int = 0


class QueryAccuracyEvaluator:
    """Precomputed ground truth + per-task F1 scoring of simplified databases."""

    def __init__(
        self,
        db: TrajectoryDatabase,
        config: QuerySuiteConfig | None = None,
        workload: RangeQueryWorkload | None = None,
    ) -> None:
        self.db = db
        self.config = config or QuerySuiteConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        # Thresholds default to fractions of the characteristic trajectory
        # scale so selectivity survives dataset re-scaling (see
        # repro.data.stats.spatial_scale).
        scale = spatial_scale(db)
        self.edr_eps = cfg.edr_eps if cfg.edr_eps is not None else 0.10 * scale
        self.similarity_delta = (
            cfg.similarity_delta
            if cfg.similarity_delta is not None
            else 0.15 * scale
        )
        traclus_eps = (
            cfg.traclus_eps if cfg.traclus_eps is not None else 0.08 * scale
        )
        self.traclus_config = TraclusConfig(
            eps=traclus_eps, min_lns=cfg.traclus_min_lns
        )

        # --- range queries -------------------------------------------------
        self.workload = workload or RangeQueryWorkload.generate(
            cfg.range_distribution, db, cfg.n_range_queries, seed=cfg.seed
        )
        self._range_truth = QueryEngine.for_database(db).evaluate(self.workload)

        # --- kNN queries (shared query trajectories for both measures) -----
        # Only trajectories whose central window still contains at least two
        # of their own samples make valid queries: a degenerate window makes
        # knn_query return [] for truth and every method's F1 trivially
        # compares empty sets (e.g. 2-point trajectories, whose middle half
        # contains neither endpoint). Such trajectories are skipped at suite
        # construction rather than scored as vacuous perfect agreement.
        eligible = [
            tid for tid in range(len(db)) if self._valid_knn_query(db[tid])
        ]
        n_knn = min(cfg.n_knn_queries, len(eligible))
        self._knn_query_ids = [
            int(i) for i in rng.choice(eligible, size=n_knn, replace=False)
        ]
        self._knn_windows = [
            self._central_window(db[qid]) for qid in self._knn_query_ids
        ]
        self.embedder = T2VecEmbedder(seed=cfg.seed).fit(db)
        knn_queries = [db[qid] for qid in self._knn_query_ids]
        self._knn_edr_truth = knn_query_batch(
            db, knn_queries, cfg.k, self._knn_windows, "edr", eps=self.edr_eps
        )
        self._knn_t2vec_truth = knn_query_batch(
            db, knn_queries, cfg.k, self._knn_windows, "t2vec",
            embedder=self.embedder,
        )

        # --- similarity queries --------------------------------------------
        # Batched through the shared engine: every candidate is interpolated
        # once over the union of all queries' checkpoints instead of once
        # per (query, candidate) pair — this was the last per-query scan in
        # the harness hot loop.
        n_sim = min(cfg.n_similarity_queries, len(db))
        self._sim_query_ids = [
            int(i) for i in rng.choice(len(db), size=n_sim, replace=False)
        ]
        self._sim_truth = similarity_query_batch(
            db,
            [db[qid] for qid in self._sim_query_ids],
            self.similarity_delta,
        )

        # --- clustering ------------------------------------------------------
        n_cluster = min(cfg.clustering_subset, len(db))
        self._cluster_ids = sorted(
            int(i) for i in rng.choice(len(db), size=n_cluster, replace=False)
        )
        truth_subset = db.subset(self._cluster_ids)
        self._cluster_truth = traclus_cluster(
            truth_subset, self.traclus_config
        ).clusters

    @staticmethod
    def _central_window(trajectory) -> tuple[float, float]:
        """The middle half of the query trajectory's time span."""
        t0, t1 = float(trajectory.times[0]), float(trajectory.times[-1])
        quarter = 0.25 * (t1 - t0)
        return (t0 + quarter, t1 - quarter)

    @classmethod
    def _valid_knn_query(cls, trajectory) -> bool:
        """Whether the trajectory's central window makes a scoreable query.

        Requires a positive window span and at least two of the
        trajectory's own samples inside it — otherwise the query's window
        restriction is degenerate and its truth is the empty list.
        """
        ts, te = cls._central_window(trajectory)
        if te <= ts:
            return False
        times = trajectory.times
        return int(((times >= ts) & (times <= te)).sum()) >= 2

    # ------------------------------------------------------------------ scoring
    def evaluate(
        self,
        simplified: TrajectoryDatabase,
        tasks: tuple[str, ...] = ALL_TASKS,
        service=None,
        client=None,
    ) -> dict[str, float]:
        """Mean F1 per task of ``simplified`` against the original's truth.

        kNN and similarity queries keep using the *original* query
        trajectories (queries arrive from outside; only the database is
        simplified), matching the paper's setup.

        ``client`` optionally supplies any :class:`repro.client.Client`
        *serving the simplified database* — local, sharded, or remote over
        a socket: the range, kNN-EDR, and similarity tasks are then
        answered through it. With no client, a
        :class:`~repro.client.LocalClient` over ``simplified`` is used, so
        every transport runs the same code path; all transports are
        property-tested bit-identical, so scores never depend on the
        choice. The t2vec kNN task (whose embedder lives in this process)
        and clustering always run locally.

        ``service`` (a :class:`repro.service.QueryService`) is the
        deprecated spelling of ``client=ServiceClient(service)``.
        """
        from repro.client import LocalClient, ServiceClient

        if len(simplified) != len(self.db):
            raise ValueError("simplified database must match the original's size")
        if service is not None:
            from repro.service._deprecation import warn_once

            if client is not None:
                raise ValueError("pass either client or service, not both")
            warn_once(
                "QueryAccuracyEvaluator.evaluate(service=)",
                "evaluate(service=...) is deprecated; pass "
                "client=repro.client.ServiceClient(service) instead",
            )
            client = ServiceClient(service)
        if client is not None and client.describe()["trajectories"] != len(
            simplified
        ):
            raise ValueError(
                "the client/service must be built over the simplified "
                f"database ({client.describe()['trajectories']} served vs "
                f"{len(simplified)} simplified trajectories)"
            )
        if client is None:
            # The local client rides the database's SHARED engine, which
            # memoizes per (database, workload): scoring the same
            # simplified database again — e.g. in evaluate_extended —
            # reuses these results.
            client = LocalClient(simplified)
        scores: dict[str, float] = {}
        for task in tasks:
            if task == "range":
                results = client.range(self.workload).result_sets
                scores[task] = float(
                    np.mean(
                        [f1_score(t, r) for t, r in zip(self._range_truth, results)]
                    )
                )
            elif task == "knn_edr":
                scores[task] = self._score_knn(simplified, "edr", client)
            elif task == "knn_t2vec":
                scores[task] = self._score_knn(simplified, "t2vec")
            elif task == "similarity":
                sim_queries = [self.db[qid] for qid in self._sim_query_ids]
                results = client.similarity(
                    sim_queries, self.similarity_delta
                ).result_sets
                scores[task] = float(
                    np.mean(
                        [
                            f1_score(t, r)
                            for t, r in zip(self._sim_truth, results)
                        ]
                    )
                )
            elif task == "clustering":
                subset = simplified.subset(self._cluster_ids)
                predicted = traclus_cluster(subset, self.traclus_config).clusters
                scores[task] = clustering_f1(self._cluster_truth, predicted)
            else:
                raise ValueError(f"unknown task {task!r}; choose from {ALL_TASKS}")
        return scores

    def evaluate_extended(
        self, simplified: TrajectoryDatabase
    ) -> dict[str, float]:
        """Alternative quality metrics beyond the paper's F1 (Eq. 3).

        Returns:

        * ``range_jaccard``   — mean intersection-over-union of range results;
        * ``knn_edr_tau``     — mean Kendall tau of the kNN *rankings* under
          EDR (F1 ignores order; tau detects rank scrambling);
        * ``clustering_ari``  — adjusted Rand index of the TRACLUS partition;
        * ``heatmap``         — histogram intersection of spatial density.

        Used by the metric-sensitivity benchmark to confirm that method
        orderings are not an artifact of the F1 choice.
        """
        if len(simplified) != len(self.db):
            raise ValueError("simplified database must match the original's size")
        from repro.queries.aggregate import heatmap_f1
        from repro.queries.metrics import (
            adjusted_rand_index,
            jaccard,
            kendall_tau,
        )

        results = QueryEngine.for_database(simplified).evaluate(self.workload)
        range_jaccard = float(
            np.mean([jaccard(t, r) for t, r in zip(self._range_truth, results)])
        )

        results = knn_query_batch(
            simplified,
            [self.db[qid] for qid in self._knn_query_ids],
            self.config.k,
            self._knn_windows,
            "edr",
            eps=self.edr_eps,
        )
        taus = [
            kendall_tau(truth, result)
            for truth, result in zip(self._knn_edr_truth, results)
        ]
        # An empty suite is vacuous perfect agreement, matching _score_knn.
        knn_tau = float(np.mean(taus)) if taus else 1.0

        subset = simplified.subset(self._cluster_ids)
        predicted = traclus_cluster(subset, self.traclus_config).clusters
        ari = adjusted_rand_index(self._cluster_truth, predicted)

        return {
            "range_jaccard": range_jaccard,
            "knn_edr_tau": knn_tau,
            "clustering_ari": float(ari),
            # heatmap_f1 rasterizes both databases through their shared
            # engines (one memoized binning pass each).
            "heatmap": heatmap_f1(self.db, simplified),
        }

    def _score_knn(
        self, simplified: TrajectoryDatabase, measure: str, client=None
    ) -> float:
        """Mean kNN F1 over the suite, batched through the shared engine."""
        truths = self._knn_edr_truth if measure == "edr" else self._knn_t2vec_truth
        if not self._knn_query_ids:
            # An empty suite is vacuous perfect agreement; don't put an
            # empty request on the wire (the schema rejects zero queries).
            return 1.0
        if client is not None and measure == "edr":
            results = client.knn(
                [self.db[qid] for qid in self._knn_query_ids],
                self.config.k,
                self._knn_windows,
                eps=self.edr_eps,
            ).neighbors
        else:
            results = knn_query_batch(
                simplified,
                [self.db[qid] for qid in self._knn_query_ids],
                self.config.k,
                self._knn_windows,
                measure,
                eps=self.edr_eps,
                embedder=self.embedder,
            )
        f1s = [
            f1_score(set(truth), set(result))
            for truth, result in zip(truths, results)
        ]
        # An empty suite (no eligible query trajectories) scores as vacuous
        # perfect agreement rather than NaN.
        return float(np.mean(f1s)) if f1s else 1.0
