"""Deformation study (paper, Figure 7).

For each range query, the trajectories it returns on the *original* database
are collected and their SED deformation — the trajectory error between the
original and its simplified version — is averaged. A query-aware simplifier
keeps the trajectories that queries actually touch better preserved, so its
deformation curve sits below the error-driven baselines even though those
baselines optimize SED globally.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase
from repro.data.trajectory import Trajectory
from repro.errors.measures import sed_point_errors
from repro.errors.segment import _recover_indices, trajectory_error
from repro.workloads.generators import RangeQueryWorkload


def mean_sed_deformation(original: Trajectory, simplified: Trajectory) -> float:
    """Average per-point SED of a simplified trajectory against its original.

    Unlike the simplification *error* (the max over segments, Eq. 2), the
    deformation averages the synchronized deviation over every original
    point — "how far does the simplified trajectory sit from the original on
    average", the quantity Figure 7 plots.
    """
    kept = _recover_indices(original, simplified)
    deviations: list[np.ndarray] = []
    for s, e in zip(kept, kept[1:]):
        if e - s >= 2:
            deviations.append(sed_point_errors(original.points, s, e))
    if not deviations:
        return 0.0
    total = np.concatenate(deviations)
    return float(total.sum() / len(original))


def query_deformation(
    original: TrajectoryDatabase,
    simplified: TrajectoryDatabase,
    workload: RangeQueryWorkload,
    measure: str = "sed",
) -> float:
    """Mean per-query deformation of the trajectories returned by queries.

    ``measure="sed"`` (the figure's setting) uses the average per-point SED
    (:func:`mean_sed_deformation`); other measures fall back to the max-based
    trajectory error. Queries returning nothing on the original database
    contribute zero.
    """
    if len(original) != len(simplified):
        raise ValueError("databases must have the same number of trajectories")
    error_cache: dict[int, float] = {}

    def deformation_of(tid: int) -> float:
        if tid not in error_cache:
            if measure == "sed":
                error_cache[tid] = mean_sed_deformation(
                    original[tid], simplified[tid]
                )
            else:
                kept = _recover_indices(original[tid], simplified[tid])
                error_cache[tid] = trajectory_error(original[tid], kept, measure)
        return error_cache[tid]

    per_query: list[float] = []
    for result in workload.evaluate(original):
        if not result:
            per_query.append(0.0)
            continue
        per_query.append(float(np.mean([deformation_of(tid) for tid in result])))
    return float(np.mean(per_query))
