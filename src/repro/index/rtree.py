"""An STR bulk-loaded R-tree over trajectory bounding boxes.

Range queries (Section III-B) must find trajectories with at least one point
in a query box. The uniform :class:`~repro.index.grid.GridIndex` does this
with cell buckets; an R-tree does it with a hierarchy of nested bounding
boxes and behaves better when trajectory extents vary wildly (long
inter-city trips next to short local ones), because a trajectory appears
exactly once instead of in every overlapped cell.

The tree is bulk-loaded with the Sort-Tile-Recursive (STR) packing
algorithm: leaf rectangles are sorted into an x-major / y-intermediate /
t-minor tiling so that each node packs ``fanout`` spatially-close children.
The tree is static — databases are simplified offline, so there is no
insert/delete path.

Each leaf rectangle is one trajectory's spatio-temporal bounding box. A box
intersection is a *candidate* — callers verify actual point membership, the
same contract as :meth:`GridIndex.candidate_trajectories`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase


@dataclass(slots=True)
class RTreeNode:
    """One R-tree node.

    Internal nodes hold child nodes; leaves hold ``(traj_id, mbr)`` entries
    so that search can test each trajectory's own bounding rectangle, as in
    a classical R-tree.
    """

    box: BoundingBox
    children: list["RTreeNode"] | None = None
    entries: list[tuple[int, BoundingBox]] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    @property
    def traj_ids(self) -> list[int] | None:
        """Trajectory ids of a leaf's entries (None for internal nodes)."""
        if self.entries is None:
            return None
        return [tid for tid, _ in self.entries]


def _union_boxes(boxes: list[BoundingBox]) -> BoundingBox:
    out = boxes[0]
    for box in boxes[1:]:
        out = out.union(box)
    return out


class RTree:
    """Static STR-packed R-tree over per-trajectory bounding boxes.

    Parameters
    ----------
    database:
        The database to index.
    fanout:
        Maximum children per node (>= 2). Typical disk R-trees use large
        fanouts; in memory a moderate fanout keeps the tree shallow without
        degenerating into a linear scan.
    """

    def __init__(self, database: TrajectoryDatabase, fanout: int = 16) -> None:
        if fanout < 2:
            raise ValueError("fanout must be >= 2")
        self.database = database
        self.fanout = fanout
        leaves = self._pack_leaves()
        self.root = self._pack_upwards(leaves)

    # ------------------------------------------------------------------- build
    def _pack_leaves(self) -> list[RTreeNode]:
        """STR tiling of trajectory boxes into leaf nodes of ``fanout`` each."""
        boxes = [t.bounding_box for t in self.database]
        ids = np.arange(len(boxes))
        centers = np.array([b.center for b in boxes])
        n = len(boxes)
        n_leaves = int(np.ceil(n / self.fanout))
        # STR: sort by x-center into vertical slabs, each slab by y into
        # columns, each column by t; consecutive runs of `fanout` become
        # leaves.
        slab_count = max(1, int(np.ceil(n_leaves ** (1.0 / 3.0))))
        per_slab = int(np.ceil(n / slab_count))
        order_x = np.argsort(centers[:, 0], kind="stable")
        leaves: list[RTreeNode] = []
        for s in range(0, n, per_slab):
            slab = order_x[s : s + per_slab]
            col_count = max(1, int(np.ceil(np.sqrt(len(slab) / self.fanout))))
            per_col = int(np.ceil(len(slab) / col_count))
            order_y = slab[np.argsort(centers[slab, 1], kind="stable")]
            for c in range(0, len(order_y), per_col):
                col = order_y[c : c + per_col]
                order_t = col[np.argsort(centers[col, 2], kind="stable")]
                for r in range(0, len(order_t), self.fanout):
                    run = order_t[r : r + self.fanout]
                    run_boxes = [boxes[i] for i in run]
                    leaves.append(
                        RTreeNode(
                            box=_union_boxes(run_boxes),
                            entries=[
                                (int(ids[i]), boxes[i]) for i in run
                            ],
                        )
                    )
        return leaves

    def _pack_upwards(self, nodes: list[RTreeNode]) -> RTreeNode:
        """Group nodes level by level (by x-center) until one root remains."""
        while len(nodes) > 1:
            centers = np.array([n.box.center for n in nodes])
            order = np.argsort(centers[:, 0], kind="stable")
            grouped: list[RTreeNode] = []
            for s in range(0, len(nodes), self.fanout):
                members = [nodes[i] for i in order[s : s + self.fanout]]
                grouped.append(
                    RTreeNode(
                        box=_union_boxes([m.box for m in members]),
                        children=members,
                    )
                )
            nodes = grouped
        return nodes[0]

    # ------------------------------------------------------------------ search
    def candidate_trajectories(self, box: BoundingBox) -> set[int]:
        """Trajectory ids whose bounding box intersects ``box``.

        Exactly the trajectories whose MBR intersects the query — a superset
        of the true range-query result; callers verify point membership (the
        same contract as the grid index).
        """
        result: set[int] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(box):
                continue
            if node.is_leaf:
                result.update(
                    tid for tid, mbr in node.entries if mbr.intersects(box)
                )
            else:
                stack.extend(node.children)
        return result

    # ------------------------------------------------------------- diagnostics
    def height(self) -> int:
        """Number of levels (1 for a single-leaf tree)."""
        h, node = 1, self.root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def node_count(self) -> int:
        count, stack = 0, [self.root]
        while stack:
            node = stack.pop()
            count += 1
            if not node.is_leaf:
                stack.extend(node.children)
        return count

    def __len__(self) -> int:
        return len(self.database)
