"""Shared machinery for spatio-temporal cube trees.

The octree (paper, Section IV) and the kd-tree (the paper's suggested
future-work index) differ only in *where* a node's cube is split — midpoints
for the octree, per-branch medians for the kd-tree. Everything else —
traversal, per-node data/query statistics, Agent-Cube's Eq. 4 state, and
start-level sampling — is identical and lives here.

Both trees expose nodes with exactly 8 children indexed by the same bit
convention (bit 0 = upper x half, bit 1 = upper y, bit 2 = upper t), so
Agent-Cube's MDP (9 actions) is index-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase


@dataclass(slots=True)
class CubeNode:
    """One cube of a spatio-temporal tree."""

    box: BoundingBox
    level: int
    children: list["CubeNode | None"] | None = None
    entries: list[tuple[int, int]] = field(default_factory=list)
    n_points: int = 0
    n_trajectories: int = 0
    n_queries: int = 0

    @property
    def is_leaf(self) -> bool:
        return self.children is None

    def child(self, k: int) -> "CubeNode | None":
        """The k-th child (0-based), or None if empty or a leaf."""
        if self.children is None:
            return None
        return self.children[k]

    def nonempty_children(self) -> list[int]:
        """0-based indices of children that contain at least one point."""
        if self.children is None:
            return []
        return [k for k, c in enumerate(self.children) if c is not None]


class CubeTree:
    """Base class: an 8-way spatio-temporal tree over a database's points.

    Subclasses implement :meth:`_split_masks_and_boxes`, which decides how a
    node's points are distributed over the 8 children and what each child's
    cube is. Construction, traversal, query annotation, and sampling are
    shared.

    Parameters
    ----------
    database:
        The database to index.
    max_depth:
        Maximum tree level (the paper's end level ``E``; root is level 1).
    leaf_capacity:
        A node with at most this many points is not split further.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        max_depth: int = 8,
        leaf_capacity: int = 32,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if leaf_capacity < 1:
            raise ValueError("leaf_capacity must be >= 1")
        self.database = database
        self.max_depth = max_depth
        self.leaf_capacity = leaf_capacity
        # A hair of padding keeps max-coordinate points strictly inside, so
        # the open/closed boundaries never lose a point.
        box = database.bounding_box
        sx, sy, st = box.spans
        pad = 1e-9
        box = box.expanded(sx * pad + pad, sy * pad + pad, st * pad + pad)
        self.root = CubeNode(box=box, level=1)
        # Level listings and sampling weights are memoized: the tree is
        # static after construction, and start-level sampling happens once
        # per inserted point.
        self._level_cache: dict[int, list[CubeNode]] = {}
        self._weight_cache: dict[tuple[int, str], np.ndarray | None] = {}
        self._build()

    # ------------------------------------------------------------------- build
    def _build(self) -> None:
        points = self.database.all_points()
        owners = self.database.point_ownership()
        indices = np.concatenate(
            [np.arange(len(t)) for t in self.database.trajectories]
        )
        self._insert_bulk(self.root, points, owners, indices)

    def _insert_bulk(
        self,
        node: CubeNode,
        points: np.ndarray,
        owners: np.ndarray,
        indices: np.ndarray,
    ) -> None:
        node.n_points = len(points)
        node.n_trajectories = len(np.unique(owners)) if len(owners) else 0
        if len(points) <= self.leaf_capacity or node.level >= self.max_depth:
            node.entries = list(zip(owners.tolist(), indices.tolist()))
            return
        octant, boxes = self._split_masks_and_boxes(node, points)
        node.children = [None] * 8
        for k in range(8):
            mask = octant == k
            if not mask.any():
                continue
            child = CubeNode(box=boxes[k], level=node.level + 1)
            node.children[k] = child
            self._insert_bulk(child, points[mask], owners[mask], indices[mask])

    def _split_masks_and_boxes(
        self, node: CubeNode, points: np.ndarray
    ) -> tuple[np.ndarray, tuple[BoundingBox, ...]]:
        """Octant assignment per point and the 8 child cubes.

        Returns an ``(n,)`` int array of octant indices (0..7, using the
        shared bit convention) and the 8 child bounding boxes, which must
        tile ``node.box``.
        """
        raise NotImplementedError

    # --------------------------------------------------------------- traversal
    def iter_nodes(self) -> Iterator[CubeNode]:
        """All nodes, pre-order."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if node.children is not None:
                stack.extend(c for c in node.children if c is not None)

    def nodes_at_level(self, level: int) -> list[CubeNode]:
        """Nodes at exactly ``level``, plus leaves shallower than ``level``.

        Including shallow leaves means the returned set always tiles the data:
        every point belongs to exactly one returned node. This is what the
        start-level sampling of Agent-Cube needs. The listing is memoized.
        """
        cached = self._level_cache.get(level)
        if cached is not None:
            return cached
        result = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.level == level or (node.is_leaf and node.level < level):
                result.append(node)
            elif node.level < level and node.children is not None:
                stack.extend(c for c in node.children if c is not None)
        self._level_cache[level] = result
        return result

    def depth(self) -> int:
        """The deepest level present in the tree."""
        return max(node.level for node in self.iter_nodes())

    def collect_points(self, node: CubeNode) -> list[tuple[int, int]]:
        """All ``(traj_id, point_index)`` entries in ``node``'s cube."""
        if node.is_leaf:
            return list(node.entries)
        result: list[tuple[int, int]] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_leaf:
                result.extend(current.entries)
            else:
                stack.extend(c for c in current.children if c is not None)
        return result

    # ----------------------------------------------------------- query counts
    def annotate_queries(self, boxes: list[BoundingBox]) -> None:
        """Fill ``n_queries`` (``Q_B``) on every node from a query workload.

        A query counts for a node when its box intersects the node's cube.
        """
        for node in self.iter_nodes():
            node.n_queries = 0
        for box in boxes:
            self._annotate_one(self.root, box)
        self._weight_cache.clear()

    def _annotate_one(self, node: CubeNode, box: BoundingBox) -> None:
        if not node.box.intersects(box):
            return
        node.n_queries += 1
        if node.children is not None:
            for child in node.children:
                if child is not None:
                    self._annotate_one(child, box)

    # ------------------------------------------------------------- statistics
    def child_fractions(self, node: CubeNode) -> np.ndarray:
        """Agent-Cube's state vector at ``node`` (Eq. 4).

        Returns a 16-vector: for each of the 8 children, the fraction of the
        node's trajectories and of its queries that fall in that child.
        Missing (empty) children contribute zeros.
        """
        state = np.zeros(16)
        if node.children is None:
            return state
        m_total = max(node.n_trajectories, 1)
        q_total = max(node.n_queries, 1)
        for k, child in enumerate(node.children):
            if child is None:
                continue
            state[2 * k] = child.n_trajectories / m_total
            state[2 * k + 1] = child.n_queries / q_total
        return state

    def sample_node_at_level(
        self,
        level: int,
        rng: np.random.Generator,
        by: str = "queries",
    ) -> CubeNode:
        """Sample a start node at ``level`` following a mass distribution.

        ``by="queries"`` weights nodes by ``n_queries`` (the paper's start
        level strategy: sample following the query distribution), falling
        back to point mass when no query annotations exist;
        ``by="points"`` always weights by point mass.
        """
        level = min(level, self.max_depth)
        nodes = self.nodes_at_level(level)
        if not nodes:
            return self.root
        key = (level, by)
        probs = self._weight_cache.get(key)
        if key not in self._weight_cache:
            if by == "queries":
                weights = np.array([n.n_queries for n in nodes], dtype=float)
                if weights.sum() <= 0:
                    weights = np.array([n.n_points for n in nodes], dtype=float)
            elif by == "points":
                weights = np.array([n.n_points for n in nodes], dtype=float)
            else:
                raise ValueError(f"unknown sampling weight {by!r}")
            total = weights.sum()
            probs = weights / total if total > 0 else None
            self._weight_cache[key] = probs
        if probs is None:
            return nodes[int(rng.integers(len(nodes)))]
        return nodes[int(rng.choice(len(nodes), p=probs))]
