"""A median-split spatio-temporal kd-tree (the paper's future-work index).

The paper adopts the octree "for its simplicity and leave[s] other indexes,
e.g., kd-tree, for future exploration" (Section I). This module explores it:
a kd-tree that cycles through the x, y, and t axes with *median* splits,
exposed through the same 8-way node interface as the octree so that
Agent-Cube's MDP is unchanged.

Each exposed node groups three consecutive binary median splits:

1. split the node's points at their median x into low/high halves,
2. split each half at its own median y,
3. split each quarter at its own median t.

The resulting 8 buckets use the shared bit convention (bit 0 = upper x,
bit 1 = upper y, bit 2 = upper t) and their boxes tile the parent cube
exactly (each child inherits the split planes of its own branch).

Compared to the octree's midpoint splits, median splits adapt to data skew:
children carry balanced point mass, so dense hotspots are resolved at
shallower levels. The trade-off is that cube shapes follow the data, which
changes how the query distribution spreads over children — the effect on
RL4QDTS is measured in ``benchmarks/bench_index_variants.py``.
"""

from __future__ import annotations

import numpy as np

from repro.data.bbox import BoundingBox
from repro.index.common import CubeNode, CubeTree

#: Fraction of a span used to nudge a degenerate median off the boundary.
_EPS = 1e-12


def _median_split(values: np.ndarray, lo: float, hi: float) -> float:
    """A split plane inside ``(lo, hi)`` near the median of ``values``.

    The median of heavily duplicated values can coincide with ``lo`` (making
    the lower half empty) — nudge it into the interior so both sides remain
    valid boxes; the empty side simply yields a ``None`` child.
    """
    med = float(np.median(values))
    if not lo < med < hi:
        med = 0.5 * (lo + hi)
    span = hi - lo
    return min(max(med, lo + _EPS * span), hi - _EPS * span)


class KDTree(CubeTree):
    """8-way kd-tree (x/y/t median splits) over a trajectory database."""

    def _split_masks_and_boxes(
        self, node: CubeNode, points: np.ndarray
    ) -> tuple[np.ndarray, tuple[BoundingBox, ...]]:
        box = node.box
        octant = np.zeros(len(points), dtype=int)

        x_split = _median_split(points[:, 0], box.xmin, box.xmax)
        x_hi = points[:, 0] >= x_split
        octant |= x_hi.astype(int)

        # Per-x-branch y medians, then per-(x, y)-branch t medians.
        y_splits = [box.ymin, box.ymin]  # placeholder, filled below
        t_splits = [[box.tmin] * 2 for _ in range(2)]
        for xb in (0, 1):
            x_mask = x_hi if xb else ~x_hi
            y_values = points[x_mask, 1] if x_mask.any() else points[:, 1]
            y_split = _median_split(y_values, box.ymin, box.ymax)
            y_splits[xb] = y_split
            y_hi = points[:, 1] >= y_split
            octant |= ((x_mask & y_hi).astype(int) << 1)
            for yb in (0, 1):
                quadrant = x_mask & (y_hi if yb else ~y_hi)
                t_values = points[quadrant, 2] if quadrant.any() else points[:, 2]
                t_split = _median_split(t_values, box.tmin, box.tmax)
                t_splits[xb][yb] = t_split
                t_hi = points[:, 2] >= t_split
                octant |= ((quadrant & t_hi).astype(int) << 2)

        boxes = []
        for k in range(8):
            xb, yb, tb = k & 1, (k >> 1) & 1, (k >> 2) & 1
            xlo, xhi = (box.xmin, x_split) if not xb else (x_split, box.xmax)
            y_split = y_splits[xb]
            ylo, yhi = (box.ymin, y_split) if not yb else (y_split, box.ymax)
            t_split = t_splits[xb][yb]
            tlo, thi = (box.tmin, t_split) if not tb else (t_split, box.tmax)
            boxes.append(BoundingBox(xlo, xhi, ylo, yhi, tlo, thi))
        return octant, tuple(boxes)
