"""A uniform spatio-temporal grid index.

Used to accelerate repeated range queries during reward evaluation (training
runs hundreds of queries every ``delta`` insertions) and as the tokenizer
substrate of the t2vec-style embedding (:mod:`repro.queries.t2vec`).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase


class GridIndex:
    """Uniform grid over (x, y, t) mapping cells to trajectory ids.

    Parameters
    ----------
    database:
        The database to index.
    resolution:
        Number of cells per axis, ``(nx, ny, nt)``.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        resolution: tuple[int, int, int] = (32, 32, 16),
    ) -> None:
        if any(r < 1 for r in resolution):
            raise ValueError("resolution must be positive along every axis")
        self.database = database
        self.resolution = resolution
        box = database.bounding_box
        self._origin = np.array([box.xmin, box.ymin, box.tmin])
        spans = np.array(box.spans)
        spans[spans <= 0] = 1.0
        self._cell_size = spans / np.array(resolution, dtype=float)
        self._cells: dict[tuple[int, int, int], set[int]] = defaultdict(set)
        for traj in database:
            cells = self.cells_of(traj.points)
            for cell in set(map(tuple, cells)):
                self._cells[cell].add(traj.traj_id)

    def cells_of(self, points: np.ndarray) -> np.ndarray:
        """``(n, 3)`` integer cell coordinates for each point (clipped in-range)."""
        rel = (np.asarray(points, dtype=float) - self._origin) / self._cell_size
        cells = np.floor(rel).astype(int)
        return np.clip(cells, 0, np.array(self.resolution) - 1)

    def cell_of(self, x: float, y: float, t: float) -> tuple[int, int, int]:
        cell = self.cells_of(np.array([[x, y, t]]))[0]
        return (int(cell[0]), int(cell[1]), int(cell[2]))

    def candidate_trajectories(self, box: BoundingBox) -> set[int]:
        """Ids of trajectories with a point in some cell overlapping ``box``.

        A superset of the exact range-query answer; callers verify candidates
        against actual points.
        """
        lo = self.cells_of(np.array([[box.xmin, box.ymin, box.tmin]]))[0]
        hi = self.cells_of(np.array([[box.xmax, box.ymax, box.tmax]]))[0]
        result: set[int] = set()
        for cx in range(lo[0], hi[0] + 1):
            for cy in range(lo[1], hi[1] + 1):
                for ct in range(lo[2], hi[2] + 1):
                    ids = self._cells.get((cx, cy, ct))
                    if ids:
                        result |= ids
        return result

    def occupied_cells(self) -> list[tuple[int, int, int]]:
        return list(self._cells)

    def __len__(self) -> int:
        return len(self._cells)
