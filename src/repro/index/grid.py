"""A uniform spatio-temporal grid index.

Used to accelerate repeated range queries during reward evaluation (training
runs hundreds of queries every ``delta`` insertions) and as the tokenizer
substrate of the t2vec-style embedding (:mod:`repro.queries.t2vec`).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase


def grid_geometry(
    box: BoundingBox, resolution: tuple[int, int, int]
) -> tuple[np.ndarray, np.ndarray]:
    """``(origin, cell_size)`` of a uniform grid over ``box``.

    Shared by :class:`GridIndex` and the batch query engine
    (:mod:`repro.queries.engine`) so both assign points to identical cells.
    Zero-span axes get a unit span so the division is well defined.
    """
    origin = np.array([box.xmin, box.ymin, box.tmin])
    spans = np.array(box.spans)
    spans[spans <= 0] = 1.0
    return origin, spans / np.array(resolution, dtype=float)


#: Resolution used when a workload gives no usable extent signal (empty
#: workloads, and per axis when every box is zero-extent there).
FALLBACK_RESOLUTION = (32, 32, 16)


def adaptive_resolution(
    extent: BoundingBox,
    boxes,
    max_cells: int = 1 << 18,
    max_cells_per_axis: int = 1024,
    fallback: tuple[int, int, int] = FALLBACK_RESOLUTION,
) -> tuple[int, int, int]:
    """Grid resolution matched to a workload's box-extent distribution.

    Picks, per axis, a cell size close to the workload's *median* query-box
    extent, so a typical query overlaps a small constant number of cells:
    much finer and the (queries x cells) overlap matrices grow without
    pruning more points; much coarser and every query drags in whole-extent
    candidate sets. Per-axis counts are clamped to
    ``[1, max_cells_per_axis]`` and the total cell count to ``max_cells``
    (halving the largest axes first). Results of grid-backed queries are
    identical at ANY resolution — candidates are always verified against
    actual points — so this tunes pruning cost only, never answers.

    ``boxes`` may be a :class:`~repro.workloads.RangeQueryWorkload`, range
    queries, or bare :class:`BoundingBox` objects. Degenerate workloads
    carry no extent signal and use the explicit ``fallback`` resolution
    instead of an arbitrary blow-up: an empty workload falls back on every
    axis, and an axis whose *median* box extent is zero (all boxes
    degenerate there — e.g. a workload of pure point probes, or a single
    zero-extent query) falls back on that axis alone. Callers — the
    cost-based planner in particular — may therefore call this
    unconditionally, whatever the workload looks like.
    """
    if max_cells < 1 or max_cells_per_axis < 1:
        raise ValueError("max_cells and max_cells_per_axis must be >= 1")
    if any(f < 1 for f in fallback):
        raise ValueError("fallback resolution must be positive on every axis")
    fb = np.clip(np.asarray(fallback, dtype=np.int64), 1, max_cells_per_axis)
    bare = [q.box if hasattr(q, "box") else q for q in boxes]
    spans = np.array(extent.spans, dtype=float)
    spans[spans <= 0] = 1.0  # matches grid_geometry's zero-span handling
    if not bare:
        res = fb.copy()
    else:
        extents = np.array(
            [[b.xmax - b.xmin, b.ymax - b.ymin, b.tmax - b.tmin] for b in bare],
            dtype=float,
        )
        cell = np.median(extents, axis=0)
        usable = cell > 0
        res = fb.copy()
        res[usable] = np.clip(
            np.ceil(spans[usable] / cell[usable]), 1, max_cells_per_axis
        ).astype(np.int64)
    while res.prod() > max_cells:
        res[np.argmax(res)] = max(res.max() // 2, 1)
    return (int(res[0]), int(res[1]), int(res[2]))


class GridIndex:
    """Uniform grid over (x, y, t) mapping cells to trajectory ids.

    Parameters
    ----------
    database:
        The database to index.
    resolution:
        Number of cells per axis, ``(nx, ny, nt)``.
    """

    def __init__(
        self,
        database: TrajectoryDatabase,
        resolution: tuple[int, int, int] = (32, 32, 16),
    ) -> None:
        if any(r < 1 for r in resolution):
            raise ValueError("resolution must be positive along every axis")
        self.database = database
        self.resolution = resolution
        box = database.bounding_box
        self._extent = box
        self._origin, self._cell_size = grid_geometry(box, resolution)
        self._cells: dict[tuple[int, int, int], set[int]] = defaultdict(set)
        for traj in database:
            cells = self.cells_of(traj.points)
            for cell in map(tuple, np.unique(cells, axis=0)):
                self._cells[cell].add(traj.traj_id)
        # Flat occupied-cell arrays: candidate lookup scans these with one
        # vectorized comparison instead of enumerating the cell range.
        self._cell_keys = np.array(list(self._cells), dtype=int).reshape(-1, 3)
        self._cell_sets = list(self._cells.values())

    @classmethod
    def adaptive(cls, database: TrajectoryDatabase, workload, **kwargs) -> "GridIndex":
        """A grid whose cell size follows the workload's box extents.

        Candidate supersets (and therefore query answers) are unchanged by
        the resolution choice; see :func:`adaptive_resolution`.
        """
        return cls(
            database,
            adaptive_resolution(database.bounding_box, workload, **kwargs),
        )

    def cells_of(self, points: np.ndarray) -> np.ndarray:
        """``(n, 3)`` integer cell coordinates for each point (clipped in-range)."""
        rel = (np.asarray(points, dtype=float) - self._origin) / self._cell_size
        cells = np.floor(rel).astype(int)
        return np.clip(cells, 0, np.array(self.resolution) - 1)

    def cell_of(self, x: float, y: float, t: float) -> tuple[int, int, int]:
        cell = self.cells_of(np.array([[x, y, t]]))[0]
        return (int(cell[0]), int(cell[1]), int(cell[2]))

    def candidate_trajectories(self, box: BoundingBox) -> set[int]:
        """Ids of trajectories with a point in some cell overlapping ``box``.

        A superset of the exact range-query answer; callers verify candidates
        against actual points. A box disjoint from the indexed extent has no
        candidates — without the explicit intersection test the clipped cell
        coordinates would snap an out-of-extent box onto border cells and
        return spurious candidates.
        """
        if len(self._cell_keys) == 0 or not box.intersects(self._extent):
            return set()
        corners = self.cells_of(
            np.array(
                [
                    [box.xmin, box.ymin, box.tmin],
                    [box.xmax, box.ymax, box.tmax],
                ]
            )
        )
        hit = ((self._cell_keys >= corners[0]) & (self._cell_keys <= corners[1])).all(
            axis=1
        )
        result: set[int] = set()
        for i in np.flatnonzero(hit):
            result |= self._cell_sets[i]
        return result

    def occupied_cells(self) -> list[tuple[int, int, int]]:
        return list(self._cells)

    def __len__(self) -> int:
        return len(self._cells)
