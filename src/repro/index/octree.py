"""The spatio-temporal octree (paper, Section IV).

RL4QDTS partitions the database into *spatio-temporal cubes* by recursively
splitting the 2D-space x 1D-time bounding box into 8 octants. The tree gives
Agent-Cube cubes of adaptive resolution: the root is the whole database and
each level halves every dimension.

Each node records:

* ``n_points`` — number of points inside its cube,
* ``n_trajectories`` (``M_B`` in the paper) — number of *distinct*
  trajectories with at least one point inside,
* ``n_queries`` (``Q_B``) — number of training-workload queries whose box
  intersects the cube (filled in by :meth:`Octree.annotate_queries`).

Points (``(traj_id, point_index)`` pairs) are stored at leaves only;
:meth:`Octree.collect_points` gathers the points under any internal node.

Levels are 1-based to match the paper's ``B^j_i`` notation (the root is at
level 1). Octant child ``k`` (0-based) uses bit 0 for the x half, bit 1 for
y, and bit 2 for t.

Traversal, statistics, and sampling are shared with the kd-tree variant via
:class:`repro.index.common.CubeTree`.
"""

from __future__ import annotations

import numpy as np

from repro.data.bbox import BoundingBox
from repro.index.common import CubeNode, CubeTree

#: Back-compat alias: octree nodes are plain cube-tree nodes.
OctreeNode = CubeNode


class Octree(CubeTree):
    """Midpoint-split octree over all points of a trajectory database."""

    def _split_masks_and_boxes(
        self, node: CubeNode, points: np.ndarray
    ) -> tuple[np.ndarray, tuple[BoundingBox, ...]]:
        cx, cy, ct = node.box.center
        octant = (
            (points[:, 0] >= cx).astype(int)
            | ((points[:, 1] >= cy).astype(int) << 1)
            | ((points[:, 2] >= ct).astype(int) << 2)
        )
        return octant, node.box.split8()
