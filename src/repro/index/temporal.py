"""A temporal interval index over trajectory lifespans.

kNN and similarity queries carry a time window ``[ts, te]`` (Section III-B);
only trajectories whose lifespan overlaps the window can contribute. With
many short-lived trajectories (taxi trips) this prunes most of the database
before any geometry is touched.

The index keeps trajectory lifespans sorted by start time; an overlap query
binary-searches the start array and filters the prefix by end time with one
vectorized comparison — ``O(log M + k)`` for ``k`` candidates in the
sorted-prefix sense, and never slower than the ``O(M)`` scan it replaces.
"""

from __future__ import annotations

import numpy as np

from repro.data.database import TrajectoryDatabase


class TemporalIndex:
    """Sorted-lifespan index supporting interval-overlap queries."""

    __slots__ = ("database", "_starts", "_ends", "_ids")

    def __init__(self, database: TrajectoryDatabase) -> None:
        self.database = database
        starts = np.array([t.times[0] for t in database])
        ends = np.array([t.times[-1] for t in database])
        order = np.argsort(starts, kind="stable")
        self._starts = starts[order]
        self._ends = ends[order]
        self._ids = np.arange(len(database))[order]

    def __len__(self) -> int:
        return len(self._ids)

    def overlapping(self, t_start: float, t_end: float) -> set[int]:
        """Ids of trajectories whose lifespan intersects ``[t_start, t_end]``.

        A lifespan ``[s, e]`` overlaps when ``s <= t_end`` and ``e >=
        t_start`` (closed intervals, matching the closed query boxes).
        """
        if t_end < t_start:
            raise ValueError("empty time window")
        # Only trajectories starting at or before t_end can overlap.
        cut = int(np.searchsorted(self._starts, t_end, side="right"))
        mask = self._ends[:cut] >= t_start
        return set(int(i) for i in self._ids[:cut][mask])

    def alive_at(self, t: float) -> set[int]:
        """Ids of trajectories whose lifespan contains the instant ``t``."""
        return self.overlapping(t, t)

    def span(self) -> tuple[float, float]:
        """The database's overall temporal extent."""
        return float(self._starts.min()), float(self._ends.max())
