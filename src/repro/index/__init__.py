"""Spatio-temporal indexes.

* :class:`Octree` — the midpoint-split cube tree RL4QDTS uses (Section IV);
* :class:`KDTree` — the median-split alternative the paper leaves as future
  work, interchangeable with the octree;
* :class:`GridIndex` — a uniform grid accelerating range queries;
* :class:`RTree` — an STR bulk-loaded R-tree over trajectory bounding boxes,
  an alternative range-query accelerator;
* :class:`TemporalIndex` — sorted-lifespan interval index pruning the
  time-window tests of kNN / similarity queries.

All five are interchangeable behind the :class:`IndexBackend` protocol
(:mod:`repro.index.backend`): one adapter per index turns it into a
batched candidate generator + distance lower bound for the query engine,
and :func:`make_backend` resolves names from the :data:`BACKENDS`
registry. Backend choice tunes pruning cost only — answers are always
verified against actual points.
"""

from repro.index.common import CubeNode, CubeTree
from repro.index.octree import Octree, OctreeNode
from repro.index.kdtree import KDTree
from repro.index.grid import GridIndex, adaptive_resolution, FALLBACK_RESOLUTION
from repro.index.rtree import RTree
from repro.index.temporal import TemporalIndex
from repro.index.backend import (
    BACKENDS,
    GridBackend,
    IndexBackend,
    KDTreeBackend,
    OctreeBackend,
    RTreeBackend,
    TemporalBackend,
    chebyshev_gap,
    make_backend,
)

TREE_INDEXES = {"octree": Octree, "kdtree": KDTree}

__all__ = [
    "CubeNode",
    "CubeTree",
    "Octree",
    "OctreeNode",
    "KDTree",
    "GridIndex",
    "adaptive_resolution",
    "FALLBACK_RESOLUTION",
    "RTree",
    "TemporalIndex",
    "TREE_INDEXES",
    "IndexBackend",
    "GridBackend",
    "OctreeBackend",
    "KDTreeBackend",
    "RTreeBackend",
    "TemporalBackend",
    "BACKENDS",
    "make_backend",
    "chebyshev_gap",
]
