"""Spatio-temporal indexes.

* :class:`Octree` — the midpoint-split cube tree RL4QDTS uses (Section IV);
* :class:`KDTree` — the median-split alternative the paper leaves as future
  work, interchangeable with the octree;
* :class:`GridIndex` — a uniform grid accelerating range queries;
* :class:`RTree` — an STR bulk-loaded R-tree over trajectory bounding boxes,
  an alternative range-query accelerator;
* :class:`TemporalIndex` — sorted-lifespan interval index pruning the
  time-window tests of kNN / similarity queries.
"""

from repro.index.common import CubeNode, CubeTree
from repro.index.octree import Octree, OctreeNode
from repro.index.kdtree import KDTree
from repro.index.grid import GridIndex, adaptive_resolution
from repro.index.rtree import RTree
from repro.index.temporal import TemporalIndex

TREE_INDEXES = {"octree": Octree, "kdtree": KDTree}

__all__ = [
    "CubeNode",
    "CubeTree",
    "Octree",
    "OctreeNode",
    "KDTree",
    "GridIndex",
    "adaptive_resolution",
    "RTree",
    "TemporalIndex",
    "TREE_INDEXES",
]
