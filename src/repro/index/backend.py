"""Pluggable candidate-pruning backends behind one protocol.

Every index in :mod:`repro.index` does the same job for the batch query
engine: given a query box, name a *superset* of the trajectories that could
match, cheaply. Answers are always verified against actual points, so the
choice of index can only change pruning **cost**, never results — which is
exactly what makes the backends interchangeable behind one protocol.

:class:`IndexBackend` is that protocol. A backend is built from a
:class:`~repro.data.TrajectoryDatabase` and offers:

* :meth:`~IndexBackend.candidate_ids` — vectorized candidate generation for
  a whole batch of boxes at once (the unit of work of
  :class:`~repro.queries.engine.QueryEngine`), returning one sorted
  trajectory-id array per box, each a superset of the exact range-query
  answer;
* :meth:`~IndexBackend.distance_lower_bound` — an admissible Chebyshev
  (L-infinity) spatial lower bound from the indexed data to a query box,
  used by the sharded service to skip shards that provably cannot beat a
  kNN candidate under EDR (whose match test is per-dimension:
  ``|dx| <= eps and |dy| <= eps``).

Five adapters cover the repo's indexes:

==================  =======================================================
backend             pruning structure
==================  =======================================================
``grid``            uniform-cell buckets (:class:`~repro.index.grid.GridIndex`);
                    the engine's CSR fast path adopts its geometry directly
``octree``          midpoint-split cube tree (:class:`~repro.index.octree.Octree`)
``kdtree``          median-split cube tree (:class:`~repro.index.kdtree.KDTree`)
``rtree``           STR-packed trajectory MBRs (:class:`~repro.index.rtree.RTree`)
``temporal``        sorted-lifespan intervals (:class:`~repro.index.temporal.TemporalIndex`);
                    prunes on the time axis only
==================  =======================================================

Underlying index structures are built lazily on first use, so handing a
backend to an engine costs nothing until a query actually needs pruning
(the grid backend in particular is usually consumed only for its geometry).
"""

from __future__ import annotations

from weakref import ref

import numpy as np

from repro.data.bbox import BoundingBox
from repro.data.database import TrajectoryDatabase
from repro.index.grid import GridIndex, grid_geometry
from repro.index.kdtree import KDTree
from repro.index.octree import Octree
from repro.index.rtree import RTree
from repro.index.temporal import TemporalIndex


def chebyshev_gap(extent: BoundingBox, box: BoundingBox) -> float:
    """Minimal L-infinity *spatial* distance between two boxes (0 if they
    overlap in x and y), or ``inf`` when their time ranges are disjoint.

    This is the shared geometric primitive behind every
    :meth:`IndexBackend.distance_lower_bound` and the service's shard-level
    kNN pruning: no point inside ``extent`` can be within Chebyshev
    distance ``g`` of any point inside ``box`` when the returned gap
    exceeds ``g``. The temporal disjointness case returns ``inf`` because a
    time-windowed query cannot touch the indexed data at all — there is no
    candidate, not merely a distant one.
    """
    if extent.tmax < box.tmin or extent.tmin > box.tmax:
        return float("inf")
    gap_x = max(extent.xmin - box.xmax, box.xmin - extent.xmax, 0.0)
    gap_y = max(extent.ymin - box.ymax, box.ymin - extent.ymax, 0.0)
    return float(max(gap_x, gap_y))


def boxes_from_bounds(lo: np.ndarray, hi: np.ndarray) -> list[BoundingBox]:
    """Rehydrate ``(Q, 3)`` lower/upper bound matrices into boxes."""
    return [
        BoundingBox(l[0], h[0], l[1], h[1], l[2], h[2])
        for l, h in zip(np.asarray(lo, dtype=float), np.asarray(hi, dtype=float))
    ]


class IndexBackend:
    """Candidate-pruning protocol every index backend implements.

    Subclasses fill in :meth:`_candidates_one` (single-box candidate set)
    and may override :meth:`candidate_ids` when a genuinely batched
    implementation exists. The contract, property-tested across all
    backends (``tests/test_index_backends.py``):

    * every trajectory with at least one point inside a box appears in
      that box's candidate array (superset / completeness);
    * candidate arrays are sorted ``int64`` ids, without duplicates;
    * :meth:`distance_lower_bound` never exceeds the true minimal
      Chebyshev distance from indexed points to the box (admissibility).
    """

    #: Registry name ("grid", "octree", ...); set by subclasses.
    name: str = "?"

    def __init__(self, database: TrajectoryDatabase) -> None:
        if len(database) == 0:
            raise ValueError("cannot index an empty database")
        # Weak, like QueryEngine's database reference: engines cache
        # themselves in a process-wide WeakKeyDictionary keyed on the
        # database, and an engine's backend strongly referencing that
        # database would pin the entry forever. Holds only until the lazy
        # index structure is built — the underlying index classes keep a
        # strong `database` attribute — which the default engine path never
        # triggers (a GridBackend driving an engine is consumed for its
        # geometry alone, so `QueryEngine.for_database` stays leak-free).
        self._db_ref = ref(database)
        self.extent = database.bounding_box

    @property
    def database(self) -> TrajectoryDatabase:
        """The indexed database (raises once it has been garbage-collected)."""
        db = self._db_ref()
        if db is None:
            raise ReferenceError(
                "the backend's database has been garbage-collected before "
                "its index structure was built"
            )
        return db

    # ----------------------------------------------------------- candidates
    def _candidates_one(self, box: BoundingBox) -> "set[int] | np.ndarray":
        raise NotImplementedError

    def candidate_ids(self, lo: np.ndarray, hi: np.ndarray) -> list[np.ndarray]:
        """Per-box sorted candidate trajectory ids for a batch of boxes.

        ``lo`` / ``hi`` are ``(Q, 3)`` bound matrices (the engine's
        workload currency). Each returned array is a superset of the ids
        of trajectories with a point inside the corresponding closed box.
        """
        out = []
        for box in boxes_from_bounds(lo, hi):
            cand = self._candidates_one(box)
            arr = np.fromiter(cand, dtype=np.int64, count=len(cand))
            arr.sort()
            out.append(arr)
        return out

    def candidate_trajectories(self, box: BoundingBox) -> set[int]:
        """Single-box convenience wrapper (GridIndex/RTree-compatible)."""
        return {int(t) for t in self._candidates_one(box)}

    # ---------------------------------------------------------- kNN pruning
    def distance_lower_bound(self, box: BoundingBox) -> float:
        """Admissible Chebyshev spatial lower bound from indexed points to
        ``box`` (``inf`` when the time ranges cannot overlap).

        The default bounds via the whole indexed extent; structure-aware
        backends may tighten it, but must never over-estimate.
        """
        return chebyshev_gap(self.extent, box)


class GridBackend(IndexBackend):
    """Uniform-grid backend; the engine's CSR layout adopts its geometry.

    Wraps an existing :class:`GridIndex` or just a resolution. The index
    structure itself is built lazily — when a :class:`GridBackend` drives a
    :class:`~repro.queries.engine.QueryEngine`, the engine runs its own CSR
    sweep over the same cell geometry and never needs the bucket index.
    """

    name = "grid"

    def __init__(
        self,
        database: TrajectoryDatabase,
        resolution: tuple[int, int, int] = (32, 32, 16),
        grid: GridIndex | None = None,
    ) -> None:
        super().__init__(database)
        if grid is None and any(r < 1 for r in resolution):
            # Same contract as GridIndex; also guards grid_geometry's
            # span/resolution division below.
            raise ValueError("resolution must be positive along every axis")
        if grid is not None:
            self._grid: GridIndex | None = grid
            self.resolution = grid.resolution
            self.origin, self.cell_size = grid._origin, grid._cell_size
        else:
            self._grid = None
            self.resolution = resolution
            self.origin, self.cell_size = grid_geometry(self.extent, resolution)

    @property
    def grid(self) -> GridIndex:
        if self._grid is None:
            self._grid = GridIndex(self.database, self.resolution)
        return self._grid

    def _candidates_one(self, box: BoundingBox) -> set[int]:
        return self.grid.candidate_trajectories(box)


class _CubeTreeBackend(IndexBackend):
    """Shared octree/kd-tree adapter: collect owners of intersecting cubes."""

    tree_cls: type

    def __init__(
        self,
        database: TrajectoryDatabase,
        max_depth: int = 8,
        leaf_capacity: int = 32,
        tree=None,
    ) -> None:
        super().__init__(database)
        self._tree = tree
        self._max_depth = max_depth
        self._leaf_capacity = leaf_capacity

    @property
    def tree(self):
        if self._tree is None:
            self._tree = self.tree_cls(
                self.database,
                max_depth=self._max_depth,
                leaf_capacity=self._leaf_capacity,
            )
        return self._tree

    def _candidates_one(self, box: BoundingBox) -> set[int]:
        result: set[int] = set()
        stack = [self.tree.root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(box):
                continue
            if node.is_leaf:
                result.update(tid for tid, _ in node.entries)
            else:
                stack.extend(c for c in node.children if c is not None)
        return result


class OctreeBackend(_CubeTreeBackend):
    """Midpoint-split cube-tree backend."""

    name = "octree"
    tree_cls = Octree


class KDTreeBackend(_CubeTreeBackend):
    """Median-split cube-tree backend (adapts to data skew)."""

    name = "kdtree"
    tree_cls = KDTree


class RTreeBackend(IndexBackend):
    """STR R-tree backend over per-trajectory bounding boxes."""

    name = "rtree"

    def __init__(self, database: TrajectoryDatabase, fanout: int = 16) -> None:
        super().__init__(database)
        self._fanout = fanout
        self._rtree: RTree | None = None

    @property
    def rtree(self) -> RTree:
        if self._rtree is None:
            self._rtree = RTree(self.database, fanout=self._fanout)
        return self._rtree

    def _candidates_one(self, box: BoundingBox) -> set[int]:
        return self.rtree.candidate_trajectories(box)


class TemporalBackend(IndexBackend):
    """Sorted-lifespan backend: prunes on the time axis only.

    Candidates are the trajectories whose lifespan overlaps a box's time
    range — a valid superset (any point inside the box has a timestamp
    inside the trajectory's lifespan AND inside the box's time range), and
    the right shape for workloads of whole-extent temporal slabs, where
    spatial pruning cannot discard anything anyway.
    """

    name = "temporal"

    def __init__(self, database: TrajectoryDatabase) -> None:
        super().__init__(database)
        self._index: TemporalIndex | None = None

    @property
    def index(self) -> TemporalIndex:
        if self._index is None:
            self._index = TemporalIndex(self.database)
        return self._index

    def _candidates_one(self, box: BoundingBox) -> set[int]:
        return self.index.overlapping(box.tmin, box.tmax)


#: Name -> adapter class, the registry the planner and the service's
#: ``index=`` knobs resolve through.
BACKENDS: dict[str, type[IndexBackend]] = {
    cls.name: cls
    for cls in (GridBackend, OctreeBackend, KDTreeBackend, RTreeBackend, TemporalBackend)
}


def validate_backend_name(name: str, allow_auto: bool = False) -> str:
    """``name`` if it is a known backend (or ``"auto"`` where allowed).

    The single validation point for every ``index=`` / ``backend=`` knob
    (engine planner, shard runtimes, the service, the CLI), so the set of
    accepted names and the error message can never drift apart.
    """
    if name in BACKENDS or (allow_auto and name == "auto"):
        return name
    choices = sorted(BACKENDS) + (["auto"] if allow_auto else [])
    raise ValueError(f"unknown index backend {name!r}; choose from {choices}")


def make_backend(
    name: str, database: TrajectoryDatabase, **kwargs
) -> IndexBackend:
    """Build the named backend over ``database``.

    ``kwargs`` are forwarded to the adapter; unknown names raise with the
    known choices (``"auto"`` is resolved one level up, by
    :func:`repro.queries.planner.plan_workload`, which needs a workload).
    """
    return BACKENDS[validate_backend_name(name)](database, **kwargs)
